"""Differential fuzzing harness tests: oracles, minimizer, corpus, CLI glue.

The acceptance bar of the fuzzing work: a clean tree passes generated
cases, a deliberately seeded checkpoint-restore defect is caught by the
resume oracle, minimized to a handful of trace entries, written as a
self-contained reproducer, and replayed deterministically into the same
bucket fingerprint — then passes again once the defect is reverted.
"""

import json
from dataclasses import replace

import pytest

from repro.analysis.experiments import ExperimentSettings
from repro.errors import ConfigurationError, FuzzError
from repro.resilience.faults import (
    CampaignCell,
    CampaignReport,
    ChaosPolicy,
    dataclass_from_json,
    run_fault_campaign,
)
from repro.resilience.fuzz import (
    CORPUS_VERSION,
    FUZZ_CASE_VERSION,
    FUZZ_CONFIG_NAMES,
    ORACLE_NAMES,
    FuzzCase,
    FuzzFailure,
    corpus_paths,
    generate_case,
    load_reproducer,
    minimize_reproducer,
    replay_corpus,
    rng_stream,
    run_case,
    run_fuzz,
    write_reproducer,
)
from repro.resilience.minimize import minimize_case
from repro.tlb.set_assoc import SetAssociativeTLB
from repro.workloads.registry import get_workload


def _install_restore_defect(monkeypatch) -> None:
    """Seeded bug: restoring a snapshot silently drops pending counters.

    This is exactly the class of defect the resume oracle exists for —
    the restored hierarchy is *almost* right, and nothing crashes; only
    the digest trail of the resumed run splits from the fresh one.
    """
    original = SetAssociativeTLB.load_state_dict

    def broken(self, state):
        original(self, state)
        self._pending_hits = 0
        self._pending_misses = 0
        self._pending_fills = 0

    monkeypatch.setattr(SetAssociativeTLB, "load_state_dict", broken)


def _install_telemetry_defect(monkeypatch) -> None:
    """Seeded bug: end-of-run telemetry mutates the result it publishes.

    Only the observability oracle's run carries a hub, so only that run
    is perturbed — the exact inertness violation the oracle exists for.
    """
    from repro.observability import SimulatorInstrumentation

    original = SimulatorInstrumentation.finish

    def broken(self, result, events_fired):
        result.l1_misses += 1
        original(self, result, events_fired=events_fired)

    monkeypatch.setattr(SimulatorInstrumentation, "finish", broken)


# ----------------------------------------------------------------------
# Seeded RNG streams + case generation
# ----------------------------------------------------------------------
class TestGeneration:
    def test_rng_stream_is_deterministic_and_path_separated(self):
        a = rng_stream(7, "case", 3).integers(0, 1 << 30, 8)
        b = rng_stream(7, "case", 3).integers(0, 1 << 30, 8)
        c = rng_stream(7, "case", 4).integers(0, 1 << 30, 8)
        assert a.tolist() == b.tolist()
        assert a.tolist() != c.tolist()

    def test_generate_case_is_deterministic(self):
        for index in range(6):
            first = generate_case(11, index)
            again = generate_case(11, index)
            assert first.to_json() == again.to_json()

    def test_generated_cases_are_well_formed(self):
        seen_configs = set()
        for index in range(24):
            case = generate_case(0, index)
            assert case.config in FUZZ_CONFIG_NAMES
            assert set(case.oracles) <= set(ORACLE_NAMES)
            assert case.trace_entries() > 0
            # every case must survive its own JSON round trip
            assert FuzzCase.from_json(case.to_json()) == case
            seen_configs.add(case.config)
        assert len(seen_configs) >= 5, "generator should cover many organizations"


class TestCaseSchema:
    def test_round_trip(self):
        case = generate_case(3, 0)
        assert FuzzCase.from_json(case.to_json()) == case

    def test_rejects_wrong_version(self):
        payload = generate_case(3, 0).to_json()
        payload["case_version"] = FUZZ_CASE_VERSION + 1
        with pytest.raises(ConfigurationError, match="version"):
            FuzzCase.from_json(payload)

    def test_rejects_unknown_key(self):
        payload = generate_case(3, 0).to_json()
        payload["surprise"] = 1
        with pytest.raises(ConfigurationError, match="unknown keys: surprise"):
            FuzzCase.from_json(payload)

    def test_rejects_missing_key(self):
        payload = generate_case(3, 0).to_json()
        del payload["digest_every"]
        with pytest.raises(ConfigurationError, match="missing keys: digest_every"):
            FuzzCase.from_json(payload)

    def test_rejects_unknown_oracle(self):
        payload = generate_case(3, 0).to_json()
        payload["oracles"] = ["engines", "vibes"]
        with pytest.raises(ConfigurationError, match="unknown oracle 'vibes'"):
            FuzzCase.from_json(payload)

    def test_rejects_non_object(self):
        with pytest.raises(ConfigurationError, match="expected an object"):
            FuzzCase.from_json([1, 2, 3])


class TestFingerprints:
    def test_fingerprint_is_stable_and_shape_sensitive(self):
        a = FuzzFailure("resume", "divergence", "boundary 3", ("l1_tlb_4kb",))
        b = FuzzFailure("resume", "divergence", "different detail", ("l1_tlb_4kb",))
        c = FuzzFailure("resume", "divergence", "boundary 3", ("l2_tlb",))
        assert a.fingerprint == b.fingerprint  # detail is not bucket material
        assert a.fingerprint != c.fingerprint  # components are
        assert a.same_bucket_shape(c)
        assert not a.same_bucket_shape(FuzzFailure("engines", "divergence", ""))


# ----------------------------------------------------------------------
# The oracle stack end to end
# ----------------------------------------------------------------------
class TestOracles:
    def test_clean_tree_passes_generated_cases(self):
        for index in range(3):
            outcome = run_case(generate_case(0, index))
            assert outcome.ok, outcome.failure.to_json()

    def test_seeded_restore_defect_end_to_end(self, tmp_path):
        """ISSUE acceptance: defect -> caught -> minimized <=64 -> replays."""
        case = generate_case(0, 0)
        with pytest.MonkeyPatch.context() as patch:
            _install_restore_defect(patch)
            outcome = run_case(case)
            assert not outcome.ok
            assert outcome.failure.oracle == "resume"

            result = minimize_case(case, outcome.failure, max_evaluations=80)
            assert result.entries <= 64
            assert result.entries < result.original_entries
            assert result.failure.same_bucket_shape(outcome.failure)

            path = write_reproducer(
                tmp_path / f"{result.failure.fingerprint}.json",
                result.case,
                result.failure,
                found={"campaign_seed": 0, "case_index": 0},
            )
            loaded_case, envelope = load_reproducer(path)
            assert loaded_case == result.case
            assert envelope["fingerprint"] == result.failure.fingerprint

            replayed = replay_corpus([path])
            assert [r.status for r in replayed] == ["fail"]
            assert (
                replayed[0].outcome.failure.fingerprint == result.failure.fingerprint
            ), "replay must land in the same bucket deterministically"

        # Defect reverted: the reproducer must now pass — the corpus
        # contract for an entry whose underlying bug has been fixed.
        assert [r.status for r in replay_corpus([path])] == ["pass"]

    def test_run_fuzz_writes_then_dedupes_reproducers(self, tmp_path):
        corpus = tmp_path / "corpus"
        corpus.mkdir()
        with pytest.MonkeyPatch.context() as patch:
            _install_restore_defect(patch)
            report = run_fuzz(
                seed=0,
                cases=1,
                corpus_dir=corpus,
                minimize=True,
                minimize_evaluations=40,
            )
            assert not report.ok
            assert report.cases_run == 1
            assert len(report.new_reproducers) == 1
            assert corpus_paths(corpus) == report.new_reproducers

            again = run_fuzz(seed=0, cases=1, corpus_dir=corpus, minimize=False)
            assert not again.ok
            assert again.new_reproducers == []  # fingerprint already on disk

    def test_run_fuzz_respects_time_budget(self):
        report = run_fuzz(seed=0, cases=50, max_seconds=0.0)
        assert report.budget_exhausted
        assert report.cases_run == 0


class TestObservabilityOracle:
    def test_oracle_registered(self):
        assert "observability" in ORACLE_NAMES

    def test_oracle_toggle_is_independent_of_case_draws(self):
        """The toggle rides its own rng stream: the generator must both
        include and omit the oracle across a campaign, and flipping it
        must leave every other case field untouched (corpus stability).
        """
        included = set()
        for index in range(16):
            case = generate_case(5, index)
            included.add("observability" in case.oracles)
            bare = replace(
                case,
                oracles=tuple(n for n in ORACLE_NAMES if n != "observability"),
            )
            payload, bare_payload = case.to_json(), bare.to_json()
            payload.pop("oracles"), bare_payload.pop("oracles")
            assert payload == bare_payload
        assert included == {True, False}

    def test_seeded_telemetry_defect_end_to_end(self, tmp_path):
        """A hub that perturbs the run is caught, banked, and replays."""
        case = replace(generate_case(0, 1), oracles=ORACLE_NAMES)
        with pytest.MonkeyPatch.context() as patch:
            _install_telemetry_defect(patch)
            outcome = run_case(case)
            assert not outcome.ok
            assert outcome.failure.oracle == "observability"
            assert outcome.failure.kind == "result-mismatch"
            assert "l1_misses" in outcome.failure.components

            path = write_reproducer(
                tmp_path / f"{outcome.failure.fingerprint}.json",
                case,
                outcome.failure,
            )
            replayed = replay_corpus([path])
            assert [r.status for r in replayed] == ["fail"]
            assert replayed[0].outcome.failure.oracle == "observability"

        # Defect reverted: telemetry is inert again and the entry passes.
        assert [r.status for r in replay_corpus([path])] == ["pass"]

    def test_clean_tree_passes_with_oracle_forced_on(self):
        for index in range(2):
            case = replace(generate_case(9, index), oracles=ORACLE_NAMES)
            outcome = run_case(case)
            assert outcome.ok, outcome.failure.to_json()


# ----------------------------------------------------------------------
# Reproducer envelopes + the committed corpus
# ----------------------------------------------------------------------
class TestReproducerEnvelope:
    def _write_clean(self, tmp_path):
        case = generate_case(0, 0)
        failure = FuzzFailure("resume", "divergence", "synthetic")
        return write_reproducer(tmp_path / "r.json", case, failure)

    def test_rejects_wrong_corpus_version(self, tmp_path):
        path = self._write_clean(tmp_path)
        envelope = json.loads(path.read_text())
        envelope["corpus_version"] = CORPUS_VERSION + 1
        path.write_text(json.dumps(envelope))
        with pytest.raises(ConfigurationError, match="corpus version"):
            load_reproducer(path)

    def test_rejects_schema_drift(self, tmp_path):
        path = self._write_clean(tmp_path)
        envelope = json.loads(path.read_text())
        envelope["extra"] = True
        path.write_text(json.dumps(envelope))
        with pytest.raises(ConfigurationError, match="unknown keys: extra"):
            load_reproducer(path)

    def test_missing_file_is_structured(self, tmp_path):
        with pytest.raises(ConfigurationError, match="no reproducer"):
            load_reproducer(tmp_path / "absent.json")

    def test_minimize_reproducer_refuses_passing_case(self, tmp_path):
        path = self._write_clean(tmp_path)
        with pytest.raises(FuzzError, match="no longer fails"):
            minimize_reproducer(path, max_evaluations=4)


class TestCommittedCorpus:
    def test_committed_corpus_replays_clean(self):
        import repro

        repo_root = __import__("pathlib").Path(repro.__file__).resolve().parents[2]
        paths = corpus_paths(repo_root / "corpus")
        assert paths, "the committed regression corpus must not be empty"
        for replayed in replay_corpus(paths):
            assert replayed.status == "pass", (
                f"{replayed.path.name}: regression re-awakened "
                f"({replayed.outcome.failure and replayed.outcome.failure.to_json()})"
            )


# ----------------------------------------------------------------------
# Satellites: strict campaign JSON + CI report artifacts
# ----------------------------------------------------------------------
class TestStrictCampaignJson:
    def test_chaos_policy_round_trip(self):
        policy = ChaosPolicy(kill_probability=0.25, oom_at_boundary=3, seed=9)
        assert ChaosPolicy.from_json(policy.to_json()) == policy

    def test_chaos_policy_rejects_unknown_key(self):
        with pytest.raises(ConfigurationError, match="unknown keys: kill_prob"):
            ChaosPolicy.from_json({"kill_prob": 0.5})

    def test_chaos_policy_rejects_non_object(self):
        with pytest.raises(ConfigurationError, match="expected an object"):
            ChaosPolicy.from_json([0.5])

    def test_campaign_cell_rejects_missing_required_key(self):
        with pytest.raises(ConfigurationError, match="missing keys: fault"):
            CampaignCell.from_json({"configuration": "THP", "ok": True})

    def test_dataclass_from_json_allows_defaulted_omissions(self):
        cell = dataclass_from_json(
            CampaignCell,
            {"fault": "negative", "configuration": "THP", "ok": True},
            "campaign cell",
        )
        assert cell.faulted_accesses == 0 and cell.error is None

    def test_campaign_report_round_trip(self):
        report = CampaignReport(
            workload="povray",
            cells=[
                CampaignCell(fault="negative", configuration="THP", ok=True,
                             faulted_accesses=3, accesses=100),
                CampaignCell(fault="truncate", configuration="RMM_Lite", ok=False,
                             error="boom", error_type="SimulationError"),
            ],
        )
        restored = CampaignReport.from_json(report.to_json())
        assert restored.workload == report.workload
        assert restored.cells == report.cells
        assert restored.survived == report.survived

    def test_campaign_report_rejects_wrong_version(self):
        payload = CampaignReport(workload="x").to_json()
        payload["campaign_version"] = 99
        with pytest.raises(ConfigurationError, match="version 99"):
            CampaignReport.from_json(payload)

    def test_campaign_report_rejects_unknown_key(self):
        payload = CampaignReport(workload="x").to_json()
        payload["notes"] = "hi"
        with pytest.raises(ConfigurationError, match="unknown keys: notes"):
            CampaignReport.from_json(payload)


class TestCampaignArtifact:
    def test_report_path_archives_versioned_json(self, tmp_path):
        out = tmp_path / "campaign.json"
        report = run_fault_campaign(
            get_workload("povray"),
            ("THP",),
            ExperimentSettings(trace_accesses=4_000, seed=2),
            faults=("negative",),
            os_events=False,
            report_path=out,
        )
        assert report.survived
        archived = CampaignReport.from_json(json.loads(out.read_text()))
        assert archived.workload == report.workload
        assert archived.cells == report.cells
