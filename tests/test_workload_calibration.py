"""Calibration locks: each workload model's paper-anchored behaviour.

These tests pin the *class* of each TLB-intensive workload (docs/
workloads.md): which miss class dominates at 4 KB pages, whether THP
fixes it, which way-activity regime Lite lands in, and the range-TLB
behaviour — everything the paper reports per workload.  They are
deliberately coarse (bands, not values) so harmless re-tuning passes but
regressions in workload character fail.
"""

import pytest

from repro.analysis.experiments import ExperimentSettings, run_matrix
from repro.workloads.registry import tlb_intensive_workloads

SETTINGS = ExperimentSettings(trace_accesses=150_000)
CONFIGS = ("4KB", "THP", "TLB_Lite", "RMM_Lite")


@pytest.fixture(scope="module")
def results():
    return run_matrix(tlb_intensive_workloads(), CONFIGS, SETTINGS)


def energy_ratio(results, name, config, base):
    return results[(name, config)].total_energy_pj / results[(name, base)].total_energy_pj


class TestIntensityClasses:
    def test_all_intensive_at_4kb(self, results):
        for workload in tlb_intensive_workloads():
            assert results[(workload.name, "4KB")].l1_mpki > 5, workload.name

    def test_walk_bound_workloads(self, results):
        """cactusADM and mcf: page walks dominate the 4KB energy."""
        for name in ("cactusADM", "mcf"):
            fraction = results[(name, "4KB")].energy.fraction("page_walk")
            assert fraction > 0.45, name

    def test_l1_bound_workloads(self, results):
        """omnetpp: L1-lookup energy dominates at 4KB."""
        result = results[("omnetpp", "4KB")]
        assert result.energy.l1_tlb_pj / result.total_energy_pj > 0.5

    def test_mcf_is_worst_case(self, results):
        l2 = {w.name: results[(w.name, "4KB")].l2_mpki for w in tlb_intensive_workloads()}
        assert l2["mcf"] == max(l2.values())


class TestTHPDirections:
    def test_energy_falls_only_for_walk_bound(self, results):
        assert energy_ratio(results, "cactusADM", "THP", "4KB") < 0.9
        assert energy_ratio(results, "mcf", "THP", "4KB") < 0.8

    def test_canneal_is_thp_energy_worst_case(self, results):
        ratios = {
            w.name: energy_ratio(results, w.name, "THP", "4KB")
            for w in tlb_intensive_workloads()
        }
        assert ratios["canneal"] == max(ratios.values())
        assert ratios["canneal"] > 1.05

    def test_thp_resistant_workloads_keep_walking(self, results):
        """mcf and canneal retain L2 misses under THP; the others don't."""
        for name in ("mcf", "canneal"):
            assert results[(name, "THP")].l2_mpki > 2, name
        for name in ("astar", "GemsFDTD", "zeusmp", "mummer", "omnetpp"):
            assert results[(name, "THP")].l2_mpki < 2.5, name


class TestLiteRegimes:
    def test_way_pinned_workloads(self, results):
        """omnetpp/canneal: wide flat hot sets pin all 4 ways (Table 5)."""
        for name in ("omnetpp", "canneal"):
            shares = results[(name, "TLB_Lite")].way_lookup_shares("L1-4KB")
            assert shares.get(4, 0) > 0.9, name

    def test_downsizing_workloads(self, results):
        """mcf runs mostly 1-way; cactusADM/mummer mostly below 4 ways."""
        mcf = results[("mcf", "TLB_Lite")].way_lookup_shares("L1-4KB")
        assert mcf.get(1, 0) > 0.5
        for name in ("cactusADM", "mummer"):
            shares = results[(name, "TLB_Lite")].way_lookup_shares("L1-4KB")
            assert shares.get(4, 0) < 0.7, name

    def test_lite_never_raises_energy(self, results):
        for workload in tlb_intensive_workloads():
            assert (
                energy_ratio(results, workload.name, "TLB_Lite", "THP") < 1.02
            ), workload.name


class TestRangeRegimes:
    def test_rmm_lite_l1_misses_near_zero(self, results):
        for workload in tlb_intensive_workloads():
            assert results[(workload.name, "RMM_Lite")].l1_mpki < 0.5, workload.name

    def test_rmm_lite_downsizes_4kb_tlb(self, results):
        """With the range TLB serving hits, Lite mostly runs 1-way."""
        pinned = 0
        for workload in tlb_intensive_workloads():
            shares = results[(workload.name, "RMM_Lite")].way_lookup_shares("L1-4KB")
            if shares.get(1, 0) > 0.5:
                pinned += 1
        assert pinned >= 5  # most workloads; astar/omnetpp may keep ways

    def test_range_tlb_dominates_hits(self, results):
        for workload in tlb_intensive_workloads():
            shares = results[(workload.name, "RMM_Lite")].hit_shares()
            assert shares.get("L1-range", 0) > 0.6, workload.name

    def test_rmm_lite_biggest_saver(self, results):
        for workload in tlb_intensive_workloads():
            rmm_lite = energy_ratio(results, workload.name, "RMM_Lite", "THP")
            tlb_lite = energy_ratio(results, workload.name, "TLB_Lite", "THP")
            assert rmm_lite < tlb_lite, workload.name
