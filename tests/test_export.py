"""Tests for CSV/JSON result export."""

import csv
import json

import pytest

from repro.analysis.experiments import ExperimentSettings, run_matrix
from repro.analysis.export import flatten_result, results_to_records, write_csv, write_json
from repro.workloads.base import VMASpec, Workload
from repro.workloads.patterns import Zipf


@pytest.fixture(scope="module")
def results():
    workload = Workload(
        "exp",
        "TEST",
        [VMASpec("heap", 6), VMASpec("stack", 1, thp_eligible=False)],
        lambda regions: Zipf(regions["heap"].subregion(0, 24), alpha=1.1, burst=3),
        instructions_per_access=3.0,
    )
    settings = ExperimentSettings(trace_accesses=8_000, physical_bytes=1 << 28)
    return run_matrix([workload], ("4KB", "THP", "RMM_Lite"), settings)


class TestFlatten:
    def test_core_fields(self, results):
        record = flatten_result(results[("exp", "THP")])
        assert record["configuration"] == "THP"
        assert record["workload"] == "exp"
        assert record["accesses"] > 0
        assert record["energy_total_pj"] == pytest.approx(
            results[("exp", "THP")].total_energy_pj
        )

    def test_components_present(self, results):
        record = flatten_result(results[("exp", "THP")])
        assert "energy_l1_page_tlbs_pj" in record
        assert "energy_page_walk_pj" in record

    def test_per_structure_fields(self, results):
        record = flatten_result(results[("exp", "RMM_Lite")])
        assert "lookups_l1_range" in record
        assert "hits_l1_range" in record

    def test_records_from_matrix(self, results):
        records = results_to_records(results)
        assert len(records) == 3
        assert {r["configuration"] for r in records} == {"4KB", "THP", "RMM_Lite"}

    def test_records_from_list(self, results):
        records = results_to_records(list(results.values())[:2])
        assert len(records) == 2


class TestWriters:
    def test_csv_roundtrip(self, results, tmp_path):
        path = write_csv(tmp_path / "out.csv", results)
        with path.open() as handle:
            rows = list(csv.DictReader(handle))
        assert len(rows) == 3
        by_config = {row["configuration"]: row for row in rows}
        assert float(by_config["THP"]["energy_total_pj"]) == pytest.approx(
            results[("exp", "THP")].total_energy_pj
        )
        # Union-of-columns: configs without a structure leave it blank.
        assert by_config["THP"].get("lookups_l1_range", "") == ""

    def test_json_roundtrip(self, results, tmp_path):
        path = write_json(tmp_path / "out.json", results)
        records = json.loads(path.read_text())
        assert len(records) == 3
        assert all("l1_mpki" in record for record in records)

    def test_empty_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            write_csv(tmp_path / "x.csv", {})
        with pytest.raises(ValueError):
            write_json(tmp_path / "x.json", [])
