"""Unit tests for the fully-associative LRU structure."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tlb.fully_assoc import FullyAssociativeTLB


class TestBasics:
    def test_miss_then_hit(self):
        tlb = FullyAssociativeTLB("t", 4)
        assert tlb.lookup("a") is None
        tlb.fill("a", 1)
        assert tlb.lookup("a") == 1

    def test_zero_entries_rejected(self):
        with pytest.raises(ValueError):
            FullyAssociativeTLB("t", 0)

    def test_lru_eviction(self):
        tlb = FullyAssociativeTLB("t", 2)
        tlb.fill("a", 1)
        tlb.fill("b", 2)
        tlb.lookup("a")
        tlb.fill("c", 3)  # evicts b (LRU)
        assert tlb.peek("b") is None
        assert tlb.peek("a") == 1

    def test_fill_refreshes_existing(self):
        tlb = FullyAssociativeTLB("t", 2)
        tlb.fill("a", 1)
        tlb.fill("b", 2)
        tlb.fill("a", 10)
        tlb.fill("c", 3)  # evicts b
        assert tlb.peek("a") == 10
        assert tlb.peek("b") is None

    def test_recency_order(self):
        tlb = FullyAssociativeTLB("t", 3)
        for key in "abc":
            tlb.fill(key, key)
        tlb.lookup("a")
        assert tlb.resident_keys() == ["a", "c", "b"]

    def test_invalidate_and_flush(self):
        tlb = FullyAssociativeTLB("t", 3)
        tlb.fill("a", 1)
        assert tlb.invalidate("a")
        assert not tlb.invalidate("a")
        tlb.fill("b", 2)
        tlb.flush()
        assert tlb.occupancy() == 0

    def test_stats_counting(self):
        tlb = FullyAssociativeTLB("t", 2)
        tlb.lookup("x")
        tlb.fill("x", 1)
        tlb.lookup("x")
        tlb.sync_stats()
        assert tlb.stats.misses == 1
        assert tlb.stats.hits == 1
        assert tlb.stats.lookups_by_ways == {2: 2}
        assert tlb.stats.fills_by_ways == {2: 1}


class TestResizing:
    def test_shrink_drops_lru(self):
        tlb = FullyAssociativeTLB("t", 4)
        for key in "abcd":
            tlb.fill(key, key)
        tlb.set_active_entries(2)
        assert tlb.resident_keys() == ["d", "c"]

    def test_grow_restores_capacity_without_stale(self):
        tlb = FullyAssociativeTLB("t", 4)
        for key in "abcd":
            tlb.fill(key, key)
        tlb.set_active_entries(1)
        tlb.set_active_entries(4)
        assert tlb.resident_keys() == ["d"]
        for key in "wxyz":
            tlb.fill(key, key)
        assert tlb.occupancy() == 4

    def test_out_of_range_rejected(self):
        tlb = FullyAssociativeTLB("t", 4)
        with pytest.raises(ValueError):
            tlb.set_active_entries(0)
        with pytest.raises(ValueError):
            tlb.set_active_entries(5)

    def test_lookups_histogrammed_by_capacity(self):
        tlb = FullyAssociativeTLB("t", 4)
        tlb.lookup("a")
        tlb.set_active_entries(2)
        tlb.lookup("a")
        tlb.sync_stats()
        assert tlb.stats.lookups_by_ways == {4: 1, 2: 1}

    def test_rank_counters(self):
        tlb = FullyAssociativeTLB("t", 8)
        counters = [0] * 4
        tlb.hit_rank_counters = counters
        for key in range(8):
            tlb.fill(key, key)
        tlb.lookup(7)  # rank 0
        tlb.lookup(0)  # rank 7 -> group 3
        assert counters == [1, 0, 0, 1]


@settings(max_examples=60, deadline=None)
@given(
    keys=st.lists(st.integers(min_value=0, max_value=20), min_size=1, max_size=200),
    entries=st.integers(min_value=1, max_value=8),
)
def test_matches_reference_lru_stack(keys, entries):
    tlb = FullyAssociativeTLB("t", entries)
    stack: list[int] = []
    for key in keys:
        expect_hit = key in stack
        assert (tlb.lookup(key) is not None) == expect_hit
        if expect_hit:
            stack.remove(key)
        else:
            tlb.fill(key, key)
        stack.insert(0, key)
        del stack[entries:]
    assert tlb.resident_keys() == stack
