"""Tests for the Process abstraction (mmap/munmap lifecycle)."""

import pytest

from repro.mem.paging import DemandPaging, EagerPaging
from repro.mem.physical import PhysicalMemory
from repro.mem.process import Process
from repro.mmu.page_table import PageFault
from repro.mmu.translation import PAGES_PER_2MB


class TestMmap:
    def test_mmap_bytes_rounds_up(self, demand_process):
        vma = demand_process.mmap_bytes(10_000)
        assert vma.num_pages == 3

    def test_translate_inside_mapping(self, demand_process):
        vma = demand_process.mmap(50)
        demand_process.translate(vma.start_vpn + 25)

    def test_translate_outside_faults(self, demand_process):
        demand_process.mmap(50)
        with pytest.raises(PageFault):
            demand_process.translate(5)

    def test_per_call_policy_override(self):
        process = Process(PhysicalMemory(1 << 30, seed=1), DemandPaging())
        process.mmap(PAGES_PER_2MB, policy=EagerPaging("thp"))
        assert len(process.range_table) == 1

    def test_describe_mentions_policy_and_size(self, thp_process):
        thp_process.mmap(256, name="heap")
        text = thp_process.describe()
        assert "THP" in text
        assert "1 VMAs" in text


class TestMunmap:
    def test_munmap_frees_frames_demand(self, demand_process):
        physical = demand_process.physical
        used_before = physical.frames_used
        vma = demand_process.mmap(500)
        demand_process.munmap(vma)
        # All user frames returned; only scatter-pool stock stays claimed.
        assert physical.frames_used - physical.scatter_pool_frames == used_before
        with pytest.raises(PageFault):
            demand_process.translate(vma.start_vpn)

    def test_munmap_frees_frames_thp(self, thp_process):
        physical = thp_process.physical
        used_before = physical.frames_used
        vma = thp_process.mmap(PAGES_PER_2MB * 2 + 5)
        thp_process.munmap(vma)
        assert physical.frames_used - physical.scatter_pool_frames == used_before

    def test_munmap_removes_range(self, eager_process):
        vma = eager_process.mmap(100)
        eager_process.munmap(vma)
        assert len(eager_process.range_table) == 0

    def test_remap_after_unmap(self, demand_process):
        vma = demand_process.mmap(100)
        demand_process.munmap(vma)
        again = demand_process.mmap(100, at_vpn=vma.start_vpn)
        demand_process.translate(again.start_vpn)
