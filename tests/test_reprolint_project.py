"""Whole-program analysis tests: ProjectContext, RL007–RL010, seeding.

Two layers:

* unit tests for :class:`repro.lint.project.ProjectContext` on a
  synthetic package (module naming, re-export resolution, inherited
  attribute-write sets, call-graph edges through ``functools.partial``
  and method references);
* the ISSUE acceptance seeding tests: deleting one key from a real
  component's ``state_dict()`` return makes ``python -m repro lint
  --rules=RL007 --strict`` fail with a finding naming the class and the
  attribute, and restoring it makes the run clean — demonstrated on a
  TLB organization, the Lite controller, and the page walker.
"""

from __future__ import annotations

import shutil
import subprocess
import sys
from pathlib import Path

import pytest

from repro.lint.engine import PassManager, iter_python_files
from repro.lint.project import ClassInfo, FunctionInfo, ModuleInfo, ProjectContext

TESTS_DIR = Path(__file__).resolve().parent
REPO_ROOT = TESTS_DIR.parent
PACKAGE = REPO_ROOT / "src" / "repro"


def build_project(root: Path, package: Path | None = None) -> ProjectContext:
    manager = PassManager([])
    contexts = []
    for file in iter_python_files(package or root):
        ctx = manager.parse_file(file, root)
        if ctx is not None:
            contexts.append(ctx)
    assert not manager.parse_failures, manager.parse_failures
    return ProjectContext(contexts)


# ---------------------------------------------------------------------------
# Synthetic package: precise resolution semantics
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def synthetic(tmp_path_factory):
    root = tmp_path_factory.mktemp("proj")
    pkg = root / "pkg"
    pkg.mkdir()
    (pkg / "__init__.py").write_text(
        "from .impl import Base, helper\n"
        "from .sub import Child\n"
    )
    (pkg / "impl.py").write_text(
        "def helper(value):\n"
        "    return value + 1\n"
        "\n"
        "\n"
        "class Base:\n"
        "    def __init__(self):\n"
        "        self.base_count = 0\n"
        "\n"
        "    def bump(self):\n"
        "        self.base_count += 1\n"
    )
    (pkg / "sub.py").write_text(
        "import functools\n"
        "\n"
        "from .impl import Base, helper\n"
        "\n"
        "\n"
        "class Child(Base):\n"
        "    def __init__(self):\n"
        "        super().__init__()\n"
        "        self.child_items = []\n"
        "        self.engine = Base()\n"
        "\n"
        "    def tick(self):\n"
        "        self.child_items.append(1)\n"
        "\n"
        "    def defer(self):\n"
        "        callback = functools.partial(helper, 1)\n"
        "        return callback\n"
        "\n"
        "    def delegate(self):\n"
        "        self.engine.bump()\n"
        "\n"
        "\n"
        "def register(fn):\n"
        "    return fn\n"
        "\n"
        "\n"
        "def wire():\n"
        "    return register(Child.tick)\n"
    )
    return build_project(root)


class TestModuleIndex:
    def test_module_names_follow_init_markers(self, synthetic):
        assert {"pkg", "pkg.impl", "pkg.sub"} <= set(synthetic.modules)

    def test_resolve_direct_symbol(self, synthetic):
        resolved = synthetic.resolve("pkg.impl.Base")
        assert isinstance(resolved, ClassInfo)
        assert resolved.qualname == "pkg.impl.Base"

    def test_resolve_through_reexport(self, synthetic):
        resolved = synthetic.resolve("pkg.Base")
        assert isinstance(resolved, ClassInfo)
        assert resolved.qualname == "pkg.impl.Base"

    def test_resolve_reexported_function(self, synthetic):
        resolved = synthetic.resolve("pkg.helper")
        assert isinstance(resolved, FunctionInfo)
        assert resolved.qualname == "pkg.impl.helper"

    def test_resolve_module_itself(self, synthetic):
        resolved = synthetic.resolve("pkg.impl")
        assert isinstance(resolved, ModuleInfo)

    def test_unknown_symbol_is_none(self, synthetic):
        assert synthetic.resolve("pkg.impl.Missing") is None
        assert synthetic.resolve("os.path.join") is None


class TestClassTable:
    def test_bases_resolved_across_modules(self, synthetic):
        child = synthetic.resolve("pkg.sub.Child")
        assert [base.qualname for base in child.bases] == ["pkg.impl.Base"]
        assert [cls.name for cls in child.mro()] == ["Child", "Base"]

    def test_inherited_attribute_write_sets(self, synthetic):
        child = synthetic.resolve("pkg.sub.Child")
        writes = child.attribute_writes(include_bases=True)
        assert writes["base_count"] == {"Base.__init__", "Base.bump"}
        assert "Child.tick" in writes["child_items"]

    def test_own_writes_exclude_inherited(self, synthetic):
        child = synthetic.resolve("pkg.sub.Child")
        own = child.attribute_writes(include_bases=False)
        assert "base_count" not in own or own["base_count"] == {"Child.__init__"}

    def test_attribute_types_from_constructor(self, synthetic):
        child = synthetic.resolve("pkg.sub.Child")
        assert child.attribute_types()["engine"] == "Base"

    def test_resolve_method_walks_mro(self, synthetic):
        child = synthetic.resolve("pkg.sub.Child")
        owner, func = child.resolve_method("bump")
        assert owner.name == "Base"
        assert func.name == "bump"


class TestCallGraph:
    def test_edge_through_functools_partial(self, synthetic):
        assert "pkg.impl.helper" in synthetic.callees_of("pkg.sub.Child.defer")

    def test_edge_through_method_reference(self, synthetic):
        callees = synthetic.callees_of("pkg.sub.wire")
        assert "pkg.sub.register" in callees
        assert "pkg.sub.Child.tick" in callees

    def test_edge_through_attribute_type_dispatch(self, synthetic):
        assert "pkg.impl.Base.bump" in synthetic.callees_of("pkg.sub.Child.delegate")

    def test_edge_kinds(self, synthetic):
        defer = synthetic.resolve("pkg.sub.Child.defer")
        kinds = {edge.kind for edge in synthetic.callees(defer.node)}
        assert "partial" in kinds


# ---------------------------------------------------------------------------
# Real repo: the resilience package's re-export surface resolves
# ---------------------------------------------------------------------------


class TestRepoResolution:
    @pytest.fixture(scope="class")
    def project(self):
        return build_project(REPO_ROOT, PACKAGE)

    def test_resilience_reexports_resolve(self, project):
        auditor = project.resolve("repro.resilience.InvariantAuditor")
        assert isinstance(auditor, ClassInfo)
        assert auditor.qualname == "repro.resilience.auditor.InvariantAuditor"

    def test_hierarchy_serializes_through_indirection(self, project):
        """RL007's dynamic-dispatch chain: BaseHierarchy.state_dict reaches
        each subclass's all_structures() override, so the repo's hierarchy
        classes lint clean without suppressions (asserted by the strict CLI
        tests below); here we pin the call-graph edge itself."""
        hierarchy = project.resolve("repro.core.hierarchy.BaseHierarchy")
        assert hierarchy is not None
        owner, _ = hierarchy.resolve_method("state_dict")
        assert owner.name == "BaseHierarchy"

    def test_derived_attr_declarations_are_indexed(self, project):
        physical = project.resolve("repro.mem.physical.PhysicalMemory")
        assert "_frames_free" in physical.derived_attrs


# ---------------------------------------------------------------------------
# Seeding: delete a checkpoint key, RL007 must fail strict; restore → clean
# ---------------------------------------------------------------------------

#: (component, file, mutation, expected class, expected attribute)
SEEDING_CASES = [
    pytest.param(
        "repro/tlb/set_assoc.py",
        ('"pending": [self._pending_hits, self._pending_misses, self._pending_fills],', ""),
        "SetAssociativeTLB",
        "_pending_hits",
        id="tlb-organization",
    ),
    pytest.param(
        "repro/core/lite.py",
        ('"instructions_seen": self._instructions_seen,', ""),
        "LiteController",
        "_instructions_seen",
        id="lite-controller",
    ),
    pytest.param(
        "repro/mmu/walker.py",
        ('return {"stats": self.stats.state_dict()}', "return {}"),
        "PageWalker",
        "stats",
        id="page-walker",
    ),
]


def run_lint_cli(*args, cwd):
    return subprocess.run(
        [sys.executable, "-m", "repro", "lint", *args],
        capture_output=True,
        text=True,
        cwd=cwd,
        env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin"},
    )


class TestCheckpointSeeding:
    @pytest.fixture(scope="class")
    def tree(self, tmp_path_factory):
        """A pristine copy of the package, linted once to prove cleanliness."""
        root = tmp_path_factory.mktemp("seeded")
        shutil.copytree(PACKAGE, root / "repro")
        clean = run_lint_cli("--rules=RL007", "--strict", "repro", cwd=root)
        assert clean.returncode == 0, clean.stdout + clean.stderr
        return root

    @pytest.mark.parametrize("relpath, mutation, cls, attr", SEEDING_CASES)
    def test_deleted_key_fails_then_restores_clean(
        self, tree, relpath, mutation, cls, attr
    ):
        target = tree / relpath
        original = target.read_text()
        old, new = mutation
        assert original.count(old) == 1, f"seeding anchor drifted in {relpath}"
        try:
            target.write_text(original.replace(old, new))
            broken = run_lint_cli("--rules=RL007", "--strict", "repro", cwd=tree)
            assert broken.returncode == 1, broken.stdout + broken.stderr
            flagged = [
                line
                for line in broken.stdout.splitlines()
                if "RL007" in line and cls in line and attr in line
            ]
            assert flagged, broken.stdout
        finally:
            target.write_text(original)
        restored = run_lint_cli("--rules=RL007", "--strict", "repro", cwd=tree)
        assert restored.returncode == 0, restored.stdout + restored.stderr


# ---------------------------------------------------------------------------
# Project-scoped fingerprints: baseline entries survive moving a symbol
# ---------------------------------------------------------------------------


class TestProjectFingerprints:
    def test_rl007_fingerprint_keys_on_symbol_not_path(self, tmp_path):
        """Same module, different on-disk location: the baseline holds.

        Project findings key on the qualified symbol, so a baseline
        written at one lint root still matches after the package is
        relocated (vendored deeper, linted from another cwd) — exactly
        where path-keyed fingerprints would all go stale.
        """
        from repro.lint import Baseline, lint_paths

        source = (
            "class Drifty:\n"
            "    def __init__(self):\n"
            "        self.seen = 0\n"
            "    def touch(self):\n"
            "        self.seen += 1\n"
            "    def state_dict(self):\n"
            "        return {}\n"
            "    def load_state_dict(self, state):\n"
            "        self.seen = 0\n"
        )
        shallow = tmp_path / "a" / "pkg"
        shallow.mkdir(parents=True)
        (shallow / "__init__.py").write_text("")
        (shallow / "mod.py").write_text(source)
        first = lint_paths([shallow], root=tmp_path / "a")
        rl007 = [f for f in first if f.rule == "RL007"]
        assert rl007 and all(f.symbol == "pkg.mod.Drifty" for f in rl007)
        baseline = Baseline.from_findings(first)

        deep = tmp_path / "b" / "vendored" / "pkg"
        deep.mkdir(parents=True)
        (deep / "__init__.py").write_text("")
        (deep / "mod.py").write_text(source)
        moved = lint_paths([deep], root=tmp_path / "b")
        assert {f.path for f in moved} != {f.path for f in first}
        new, baselined = baseline.partition(moved)
        assert new == []
        assert len(baselined) == len(moved)
