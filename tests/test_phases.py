"""Phase-behaviour locks: the Figure 4 workloads really have phases.

Figure 4's argument — no single TLB size is optimal across execution —
rests on astar, GemsFDTD, and mcf changing behaviour over time.  These
tests assert the timeline statistics show real phase structure, and that
the stationary workloads don't.
"""

import pytest

from repro.analysis.experiments import ExperimentSettings, run_workload_config
from repro.core.params import SimulationParams
from repro.workloads.registry import get_workload

SETTINGS = ExperimentSettings(
    trace_accesses=120_000,
    sim_params=SimulationParams(timeline_windows=24),
)


def timeline_mpki(name, config="4KB"):
    result = run_workload_config(get_workload(name), config, SETTINGS)
    return [sample.l1_mpki for sample in result.timeline]


def variation(series):
    mean = sum(series) / len(series)
    if mean == 0:
        return 0.0
    return (max(series) - min(series)) / mean


class TestPhasedWorkloads:
    @pytest.mark.parametrize(
        "name,threshold",
        [("astar", 0.25), ("GemsFDTD", 0.18), ("mcf", 0.4)],
    )
    def test_mpki_varies_across_execution(self, name, threshold):
        series = timeline_mpki(name)
        assert variation(series) > threshold, (name, series)

    def test_astar_search_vs_expand_phases(self):
        """astar's expand phase (trace fraction 0.45-0.75) differs from
        the surrounding search phases."""
        series = timeline_mpki("astar")
        n = len(series)
        search = series[: int(n * 0.40)]
        expand = series[int(n * 0.50) : int(n * 0.72)]
        search_mean = sum(search) / len(search)
        expand_mean = sum(expand) / len(expand)
        assert abs(expand_mean - search_mean) / max(search_mean, 1e-9) > 0.12

    def test_gems_alternates_with_its_field_sweeps(self):
        """GemsFDTD's repeating field sweeps modulate the MPKI."""
        series = timeline_mpki("GemsFDTD")
        mean = sum(series) / len(series)
        crossings = sum(
            1
            for a, b in zip(series, series[1:])
            if (a - mean) * (b - mean) < 0
        )
        assert crossings >= 3  # oscillates around its mean


class TestStationaryWorkloads:
    @pytest.mark.parametrize("name", ["omnetpp", "canneal"])
    def test_mpki_roughly_stationary(self, name):
        series = timeline_mpki(name)
        assert variation(series) < 0.6, (name, series)

    def test_phases_drive_lite_reconfigurations(self):
        """On phased workloads Lite keeps making decisions over time."""
        result = run_workload_config(
            get_workload("astar"), "TLB_Lite", SETTINGS, record_history=True
        )
        ways_over_time = [
            sample.active_ways["L1-4KB"] for sample in result.timeline
        ]
        assert len(set(ways_over_time)) >= 1  # recorded at every window
        assert result.lite_intervals > 20
