"""Schema and golden-output tests for the CI gate scripts.

``scripts/`` carried no test coverage of its own: the perf-smoke gate,
the throughput-report artifact, and the coverage ratchet were exercised
only by actually running in CI, where a silent schema drift (a renamed
JSON key, a broken argparse default) would surface as a confusing red
job instead of a pointed test failure.  These tests run each script's
``main`` in-process on tiny inputs and pin the observable contract:
exit codes, report schemas, and the gate verdict lines.
"""

import importlib
import json
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[1]
for _entry in (REPO_ROOT / "scripts", REPO_ROOT / "benchmarks"):
    if str(_entry) not in sys.path:
        sys.path.insert(0, str(_entry))

bench_report = importlib.import_module("bench_report")
bench_throughput = importlib.import_module("bench_throughput")
coverage_gate = importlib.import_module("coverage_gate")
perf_smoke = importlib.import_module("perf_smoke")


# ----------------------------------------------------------------------
# scripts/bench_report.py — the BENCH_throughput.json artifact
# ----------------------------------------------------------------------
class TestBenchReport:
    def test_report_schema_round_trip(self, tmp_path, monkeypatch, capsys):
        out = tmp_path / "BENCH_throughput.json"
        monkeypatch.setattr(
            sys,
            "argv",
            ["bench_report.py", "--accesses", "2000", "--rounds", "1",
             "--output", str(out)],
        )
        assert bench_report.main() == 0
        assert f"wrote {out}" in capsys.readouterr().out

        payload = json.loads(out.read_text())
        assert set(payload) == {
            "commit", "accesses", "rounds", "generated_by", "rows", "speedups",
        }
        assert payload["accesses"] == 2000
        assert payload["rounds"] == 1
        assert payload["generated_by"] == "scripts/bench_report.py"

        expected_cells = (
            len(bench_throughput.TRACES)
            * len(bench_throughput.CONFIGS)
            * len(bench_throughput.ENGINES)
        )
        assert len(payload["rows"]) == expected_cells
        for row in payload["rows"]:
            assert set(row) == {"trace", "config", "engine", "accesses_per_second"}
            assert row["trace"] in bench_throughput.TRACES
            assert row["config"] in bench_throughput.CONFIGS
            assert row["engine"] in bench_throughput.ENGINES
            assert row["accesses_per_second"] > 0

        assert set(payload["speedups"]) == set(bench_throughput.TRACES)
        for per_config in payload["speedups"].values():
            assert set(per_config) == set(bench_throughput.CONFIGS)
            assert all(ratio > 0 for ratio in per_config.values())


# ----------------------------------------------------------------------
# scripts/perf_smoke.py — the three-part perf gate
# ----------------------------------------------------------------------
class TestPerfSmoke:
    def test_gate_passes_on_healthy_tree(self, monkeypatch, capsys):
        """All three checks run and pass on a tiny trace.

        The speedup and telemetry-cost floors are slackened to
        jitter-proof values — at 4 000 accesses the timings are noise;
        this pins the *flow* (equivalence matrix, verdict lines, exit
        code), while CI runs the real floors at full size.
        """
        monkeypatch.setattr(
            sys,
            "argv",
            ["perf_smoke.py", "--accesses", "2000", "--bench-accesses", "4000",
             "--min-speedup", "0.01", "--max-telemetry-cost", "0.95"],
        )
        assert perf_smoke.main() == 0
        captured = capsys.readouterr().out
        assert "[1/3]" in captured
        assert "[2/3]" in captured
        assert "[3/3]" in captured
        assert "perf-smoke: ok" in captured
        assert "FAIL" not in captured
        # every extended config reports four byte-identical runs
        assert captured.count("byte-identical across 4 runs") == len(
            perf_smoke.EXTENDED_CONFIG_NAMES
        )


# ----------------------------------------------------------------------
# scripts/coverage_gate.py — the ratchet
# ----------------------------------------------------------------------
class TestCoverageGate:
    def _write(self, tmp_path, measured, floor):
        coverage = tmp_path / "coverage.json"
        coverage.write_text(
            json.dumps({"totals": {"percent_covered": measured}})
        )
        baseline = tmp_path / "baseline.json"
        baseline.write_text(json.dumps({"floor_percent": floor}))
        return coverage, baseline

    def _run(self, coverage, baseline, *extra):
        return coverage_gate.main(
            ["--coverage", str(coverage), "--baseline", str(baseline), *extra]
        )

    def test_passes_above_floor(self, tmp_path, capsys):
        coverage, baseline = self._write(tmp_path, measured=81.5, floor=75.0)
        assert self._run(coverage, baseline) == 0
        assert "ok — 81.50% covered (floor 75.00%)" in capsys.readouterr().out

    def test_fails_below_floor(self, tmp_path, capsys):
        coverage, baseline = self._write(tmp_path, measured=70.0, floor=75.0)
        assert self._run(coverage, baseline) == 1
        assert "FAIL" in capsys.readouterr().out

    def test_tolerance_absorbs_line_count_drift(self, tmp_path):
        coverage, baseline = self._write(tmp_path, measured=74.8, floor=75.0)
        assert self._run(coverage, baseline) == 0
        assert self._run(coverage, baseline, "--tolerance", "0.05") == 1

    def test_update_baseline_ratchets_up(self, tmp_path, capsys):
        coverage, baseline = self._write(tmp_path, measured=80.0, floor=75.0)
        assert self._run(coverage, baseline, "--update-baseline") == 0
        assert "ratcheted 75.00% -> 80.00%" in capsys.readouterr().out
        assert json.loads(baseline.read_text()) == {"floor_percent": 80.0}

    def test_update_baseline_never_lowers_the_floor(self, tmp_path):
        coverage, baseline = self._write(tmp_path, measured=70.0, floor=75.0)
        assert self._run(coverage, baseline, "--update-baseline") == 1
        assert json.loads(baseline.read_text()) == {"floor_percent": 75.0}

    def test_missing_report_is_exit_2(self, tmp_path, capsys):
        _, baseline = self._write(tmp_path, measured=80.0, floor=75.0)
        assert self._run(tmp_path / "absent.json", baseline) == 2
        assert "no coverage report" in capsys.readouterr().err

    def test_malformed_report_is_exit_2(self, tmp_path, capsys):
        coverage, baseline = self._write(tmp_path, measured=80.0, floor=75.0)
        coverage.write_text(json.dumps({"totals": {}}))
        assert self._run(coverage, baseline) == 2
        assert "malformed coverage report" in capsys.readouterr().err

    def test_committed_baseline_is_well_formed(self):
        floor = coverage_gate.read_floor(REPO_ROOT / ".coverage-baseline.json")
        assert 0.0 < floor <= 100.0


# ----------------------------------------------------------------------
# scripts/chaos_drill.py — the --metrics-out surface
# ----------------------------------------------------------------------
class TestChaosDrillCli:
    def test_metrics_out_flag_is_wired(self):
        """The argparse surface accepts --metrics-out (CI relies on it)."""
        source = (REPO_ROOT / "scripts" / "chaos_drill.py").read_text()
        assert "--metrics-out" in source
        assert "metrics_sidecar_path" in source
