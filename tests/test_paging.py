"""Tests for the paging policies: demand 4 KB, THP, and eager paging."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mem.paging import DemandPaging, EagerPaging, TransparentHugePaging
from repro.mem.physical import PhysicalMemory
from repro.mem.process import Process
from repro.mmu.translation import PAGES_PER_2MB, PageSize


class TestDemandPaging:
    def test_all_pages_4kb(self, demand_process):
        vma = demand_process.mmap(600, name="heap")
        histogram = demand_process.page_size_histogram()
        assert histogram[PageSize.SIZE_4KB] == 600
        assert histogram[PageSize.SIZE_2MB] == 0
        for vpn in range(vma.start_vpn, vma.end_vpn):
            demand_process.translate(vpn)  # must not fault

    def test_frames_scattered(self, demand_process):
        vma = demand_process.mmap(512, name="heap")
        pfns = [demand_process.translate(vpn) for vpn in range(vma.start_vpn, vma.end_vpn)]
        contiguous = sum(1 for a, b in zip(pfns, pfns[1:]) if b == a + 1)
        assert contiguous < 64

    def test_no_ranges(self, demand_process):
        demand_process.mmap(100)
        assert len(demand_process.range_table) == 0


class TestTHP:
    def test_aligned_chunks_get_huge_pages(self, thp_process):
        thp_process.mmap(PAGES_PER_2MB * 3, name="heap")
        histogram = thp_process.page_size_histogram()
        assert histogram[PageSize.SIZE_2MB] == 3
        assert histogram[PageSize.SIZE_4KB] == 0

    def test_tail_gets_4kb_pages(self, thp_process):
        thp_process.mmap(PAGES_PER_2MB + 37, name="heap")
        histogram = thp_process.page_size_histogram()
        assert histogram[PageSize.SIZE_2MB] == 1
        assert histogram[PageSize.SIZE_4KB] == 37

    def test_ineligible_vma_stays_4kb(self, thp_process):
        thp_process.mmap(PAGES_PER_2MB * 2, name="stack", thp_eligible=False)
        histogram = thp_process.page_size_histogram()
        assert histogram[PageSize.SIZE_2MB] == 0
        assert histogram[PageSize.SIZE_4KB] == PAGES_PER_2MB * 2

    def test_huge_frames_are_aligned(self, thp_process):
        vma = thp_process.mmap(PAGES_PER_2MB * 2, name="heap")
        leaf = thp_process.leaf_for(vma.start_vpn)
        assert leaf.pfn % PAGES_PER_2MB == 0

    def test_coverage_zero_is_all_4kb(self):
        process = Process(PhysicalMemory(1 << 30, seed=1), TransparentHugePaging(coverage=0.0))
        process.mmap(PAGES_PER_2MB * 4)
        assert process.page_size_histogram()[PageSize.SIZE_2MB] == 0

    def test_partial_coverage(self):
        process = Process(
            PhysicalMemory(1 << 30, seed=1), TransparentHugePaging(coverage=0.5, seed=3)
        )
        process.mmap(PAGES_PER_2MB * 40)
        huge = process.page_size_histogram()[PageSize.SIZE_2MB]
        assert 5 < huge < 35  # ~20 expected

    def test_invalid_coverage(self):
        with pytest.raises(ValueError):
            TransparentHugePaging(coverage=1.5)


class TestEagerPaging:
    def test_one_range_per_vma(self, eager_process):
        eager_process.mmap(700, name="a")
        eager_process.mmap(300, name="b")
        assert len(eager_process.range_table) == 2

    def test_range_covers_whole_vma(self, eager_process):
        vma = eager_process.mmap(700, name="a")
        entry = eager_process.range_table.lookup(vma.start_vpn)
        assert entry.base_vpn == vma.start_vpn
        assert entry.limit_vpn == vma.end_vpn

    def test_physical_contiguity_matches_page_table(self, eager_process):
        """Redundancy invariant: page table and range agree everywhere."""
        vma = eager_process.mmap(PAGES_PER_2MB * 2 + 100, name="a")
        entry = eager_process.range_table.lookup(vma.start_vpn)
        for vpn in range(vma.start_vpn, vma.end_vpn, 17):
            assert eager_process.translate(vpn) == entry.translate(vpn)

    def test_thp_layout_uses_huge_pages(self, eager_process):
        eager_process.mmap(PAGES_PER_2MB * 2, name="a")
        assert eager_process.page_size_histogram()[PageSize.SIZE_2MB] == 2

    def test_4kb_layout(self, eager_4kb_process):
        eager_4kb_process.mmap(PAGES_PER_2MB, name="a")
        histogram = eager_4kb_process.page_size_histogram()
        assert histogram[PageSize.SIZE_2MB] == 0
        assert histogram[PageSize.SIZE_4KB] == PAGES_PER_2MB

    def test_thp_layout_respects_ineligible_vma(self, eager_process):
        eager_process.mmap(PAGES_PER_2MB * 2, name="stack", thp_eligible=False)
        assert eager_process.page_size_histogram()[PageSize.SIZE_2MB] == 0
        assert len(eager_process.range_table) == 1  # range still created

    def test_invalid_layout_rejected(self):
        with pytest.raises(ValueError):
            EagerPaging(page_layout="1gb")

    def test_describe_strings(self):
        assert "4KB" in DemandPaging().describe()
        assert "THP" in TransparentHugePaging().describe()
        assert "eager" in EagerPaging().describe()


@settings(max_examples=20, deadline=None)
@given(
    npages=st.integers(min_value=1, max_value=3000),
    layout=st.sampled_from(["thp", "4kb"]),
)
def test_eager_contiguity_property(npages, layout):
    """Eager paging: PA - VA is constant across the whole VMA."""
    process = Process(PhysicalMemory(1 << 30, seed=11), EagerPaging(layout))
    vma = process.mmap(npages)
    offset = process.translate(vma.start_vpn) - vma.start_vpn
    step = max(1, npages // 50)
    for vpn in range(vma.start_vpn, vma.end_vpn, step):
        assert process.translate(vpn) - vpn == offset
