"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import main


class TestCLI:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "mcf" in out
        assert "RMM_Lite" in out

    def test_run_single_config(self, capsys):
        assert main(["run", "povray", "--accesses", "5000"]) == 0
        out = capsys.readouterr().out
        assert "pJ/access" in out
        assert "THP" in out

    def test_run_multiple_configs(self, capsys):
        assert (
            main(["run", "povray", "--configs", "4KB", "RMM_Lite", "--accesses", "5000"])
            == 0
        )
        out = capsys.readouterr().out
        assert "4KB" in out and "RMM_Lite" in out

    def test_sweep(self, capsys):
        assert main(["sweep", "povray", "--accesses", "5000"]) == 0
        out = capsys.readouterr().out
        assert "energy vs 4KB" in out
        assert "TLB_PP" in out

    def test_describe(self, capsys):
        assert main(["describe", "RMM_Lite"]) == 0
        out = capsys.readouterr().out
        assert "L1-range" in out

    def test_unknown_workload_reports_did_you_mean(self, capsys):
        assert main(["run", "mfc"]) == 2
        err = capsys.readouterr().err
        assert "did you mean" in err
        assert "mcf" in err
        assert "Traceback" not in err

    def test_unknown_config_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["describe", "bogus"])
        err = capsys.readouterr().err
        assert "unknown configuration" in err

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])
