"""Tests for the trace-driven simulator: windows, intervals, accounting."""

import numpy as np
import pytest

from repro.core.organizations import build_thp, build_tlb_lite
from repro.core.params import LiteParams, SimulationParams
from repro.core.simulator import Simulator
from repro.mem.paging import TransparentHugePaging
from repro.mem.physical import PhysicalMemory
from repro.mem.process import Process
from repro.mmu.translation import PAGES_PER_2MB


def make_process():
    process = Process(PhysicalMemory(1 << 30, seed=3), TransparentHugePaging())
    process.mmap(PAGES_PER_2MB * 4, name="heap")
    process.mmap(256, name="stack", thp_eligible=False)
    return process


def make_trace(process, n=3000, seed=0):
    generator = np.random.default_rng(seed)
    vmas = list(process.address_space)
    heap, stack = vmas[0], vmas[1]
    pages = np.where(
        generator.random(n) < 0.5,
        heap.start_vpn + generator.integers(heap.num_pages, size=n),
        stack.start_vpn + generator.integers(64, size=n),
    )
    return pages.astype(np.int64)


class TestRun:
    def test_accounting_consistency(self):
        process = make_process()
        sim = Simulator(build_thp(process), instructions_per_access=3.0)
        result = sim.run(make_trace(process), fast_forward_accesses=500)
        assert result.accesses == 2500
        assert result.instructions == 7500
        assert result.l1_misses >= result.l2_misses
        assert result.page_walks == result.l2_misses
        assert result.cycles.l1_miss_cycles == result.l1_misses * 7
        assert result.cycles.l2_miss_cycles == result.l2_misses * 50

    def test_deterministic(self):
        outcomes = []
        for _ in range(2):
            process = make_process()
            sim = Simulator(build_thp(process), instructions_per_access=3.0)
            result = sim.run(make_trace(process))
            outcomes.append((result.l1_misses, result.l2_misses, result.total_energy_pj))
        assert outcomes[0] == outcomes[1]

    def test_fast_forward_excluded_from_stats(self):
        process = make_process()
        trace = make_trace(process)
        sim = Simulator(build_thp(process))
        result = sim.run(trace, fast_forward_accesses=1000)
        assert result.accesses == len(trace) - 1000
        # Warmed structures -> fewer cold walks than a cold run measures.
        cold_process = make_process()
        cold = Simulator(build_thp(cold_process)).run(
            make_trace(cold_process), fast_forward_accesses=0
        )
        assert result.l2_misses <= cold.l2_misses

    def test_empty_trace_rejected(self):
        process = make_process()
        sim = Simulator(build_thp(process))
        with pytest.raises(ValueError):
            sim.run([])

    def test_fast_forward_must_leave_measurement(self):
        process = make_process()
        sim = Simulator(build_thp(process))
        with pytest.raises(ValueError):
            sim.run([1, 2, 3], fast_forward_accesses=3)

    def test_invalid_ipa(self):
        with pytest.raises(ValueError):
            Simulator(build_thp(make_process()), instructions_per_access=0)

    def test_accepts_plain_lists(self):
        process = make_process()
        vma = next(iter(process.address_space))
        sim = Simulator(build_thp(process))
        result = sim.run([vma.start_vpn] * 100, fast_forward_accesses=0)
        assert result.accesses == 100
        assert result.l1_misses == 1


class TestTimeline:
    def test_window_count(self):
        process = make_process()
        sim = Simulator(
            build_thp(process), sim_params=SimulationParams(timeline_windows=10)
        )
        result = sim.run(make_trace(process), fast_forward_accesses=0)
        assert len(result.timeline) == 10

    def test_timeline_mpki_reconciles_with_total(self):
        process = make_process()
        sim = Simulator(
            build_thp(process),
            instructions_per_access=2.0,
            sim_params=SimulationParams(timeline_windows=5),
        )
        result = sim.run(make_trace(process, 3000), fast_forward_accesses=0)
        window_instr = (3000 // 5) * 2
        total_from_windows = sum(s.l1_mpki * window_instr / 1000 for s in result.timeline)
        assert total_from_windows == pytest.approx(result.l1_misses, abs=1)

    def test_timeline_instructions_monotone(self):
        process = make_process()
        sim = Simulator(build_thp(process), sim_params=SimulationParams(timeline_windows=7))
        result = sim.run(make_trace(process), fast_forward_accesses=0)
        marks = [sample.instructions for sample in result.timeline]
        assert marks == sorted(marks)


class TestLiteIntegration:
    def test_intervals_fire(self):
        process = make_process()
        lite_params = LiteParams(interval_instructions=600, reactivate_probability=0.0)
        org = build_tlb_lite(process, lite_params=lite_params)
        sim = Simulator(org, instructions_per_access=3.0)
        result = sim.run(make_trace(process, 4000), fast_forward_accesses=1000)
        # 3000 measured accesses * 3 ipa / 600 instr = 15 intervals.
        assert result.lite_intervals == 15

    def test_lite_runs_during_fast_forward_too(self):
        process = make_process()
        lite_params = LiteParams(interval_instructions=600, reactivate_probability=0.0)
        org = build_tlb_lite(process, lite_params=lite_params)
        sim = Simulator(org, instructions_per_access=3.0)
        sim.run(make_trace(process, 4000), fast_forward_accesses=1000)
        assert org.lite.stats.intervals == 20

    def test_timeline_carries_active_ways(self):
        process = make_process()
        lite_params = LiteParams(interval_instructions=600, reactivate_probability=0.0)
        org = build_tlb_lite(process, lite_params=lite_params)
        sim = Simulator(org, sim_params=SimulationParams(timeline_windows=4))
        result = sim.run(make_trace(process, 4000))
        for sample in result.timeline:
            assert set(sample.active_ways) == {"L1-4KB", "L1-2MB", "L1-1GB"}

    def test_way_histogram_reflects_downsizing(self):
        """A trivially cacheable trace lets Lite shrink to 1 way."""
        process = make_process()
        vma = next(iter(process.address_space))
        trace = [vma.start_vpn] * 20_000
        lite_params = LiteParams(interval_instructions=300, reactivate_probability=0.0)
        org = build_tlb_lite(process, lite_params=lite_params)
        result = Simulator(org, instructions_per_access=3.0).run(
            trace, fast_forward_accesses=2000
        )
        shares = result.way_lookup_shares("L1-4KB")
        assert shares.get(1, 0) > 0.9


class TestResultHelpers:
    def test_hit_shares_sum_to_one(self):
        process = make_process()
        sim = Simulator(build_thp(process))
        result = sim.run(make_trace(process))
        shares = result.hit_shares()
        assert sum(shares.values()) == pytest.approx(1.0)

    def test_summary_line_contains_key_fields(self):
        process = make_process()
        result = Simulator(build_thp(process), workload_name="toy").run(
            make_trace(process)
        )
        line = result.summary_line()
        assert "THP" in line and "toy" in line
