"""Tests for the process-isolated sweep supervisor.

Covers the acceptance bar of the supervision work: a worker SIGKILLed
mid-cell is retried and the finished journal is byte-identical to an
unfaulted serial run, memory-budget breaches surface as the structured
``oom`` status, poison cells are quarantined and skipped on resume,
graceful SIGTERM leaves a resumable journal, hung workers are reclaimed
by heartbeat staleness, and old journal schema versions are rejected
loudly.
"""

import json
import signal

import pytest

from repro.analysis.experiments import ExperimentSettings
from repro.errors import SweepError
from repro.resilience import (
    ChaosPolicy,
    SweepJournal,
    run_resilient_sweep,
    run_supervised_sweep,
)
from repro.workloads.registry import get_workload

SETTINGS = ExperimentSettings(trace_accesses=6_000, seed=5)


class TestSupervisedSweep:
    CONFIGS = ("4KB", "THP")

    def test_serial_supervised_matches_in_process(self, tmp_path):
        """workers=1 journals byte-identically to the in-process runner."""
        workload = get_workload("povray")
        in_process = tmp_path / "inproc.jsonl"
        supervised = tmp_path / "super.jsonl"
        run_resilient_sweep(
            [workload], self.CONFIGS, SETTINGS, journal_path=in_process,
        )
        report = run_resilient_sweep(
            [workload], self.CONFIGS, SETTINGS,
            journal_path=supervised, workers=1,
        )
        assert report.completed_count == len(self.CONFIGS)
        assert supervised.read_bytes() == in_process.read_bytes()

    def test_sigkill_mid_cell_is_retried_to_identical_journal(self, tmp_path):
        """A worker SIGKILLed mid-cell re-runs; rows match the clean run."""
        workload = get_workload("povray")
        clean = tmp_path / "clean.jsonl"
        run_resilient_sweep(
            [workload], self.CONFIGS, SETTINGS, journal_path=clean, workers=1,
        )
        chaotic = tmp_path / "chaotic.jsonl"
        chaos = ChaosPolicy(kill_probability=1.0, seed=7)  # kill attempt 0
        report = run_resilient_sweep(
            [workload], self.CONFIGS, SETTINGS,
            journal_path=chaotic, workers=1, chaos=chaos, backoff_s=0.0,
        )
        assert [cell.status for cell in report.cells] == ["ok", "ok"]
        assert [cell.attempts for cell in report.cells] == [2, 2]
        assert chaotic.read_bytes() == clean.read_bytes()

    def test_parallel_digest_matches_serial(self, tmp_path):
        """workers=2 journals in completion order but the rows agree."""
        workload = get_workload("povray")
        serial = tmp_path / "serial.jsonl"
        parallel = tmp_path / "parallel.jsonl"
        run_resilient_sweep(
            [workload], self.CONFIGS, SETTINGS, journal_path=serial, workers=1,
        )
        report = run_resilient_sweep(
            [workload], self.CONFIGS, SETTINGS, journal_path=parallel, workers=2,
        )
        assert report.completed_count == len(self.CONFIGS)
        assert SweepJournal(parallel).digest() == SweepJournal(serial).digest()

    def test_memory_breach_is_structured_oom(self):
        """A MemoryError inside the worker becomes status 'oom', no retry."""
        workload = get_workload("povray")
        chaos = ChaosPolicy(oom_at_boundary=1)
        report = run_supervised_sweep(
            [workload], ("THP",), SETTINGS, workers=1, chaos=chaos,
        )
        cell = report.cell("povray", "THP")
        assert cell.status == "oom"
        assert cell.attempts == 1  # budget breaches are fatal, not flaky
        assert "memory budget" in cell.error

    def test_poison_cell_is_quarantined_and_skipped_on_resume(self, tmp_path):
        """Repeated crashes journal the cell as quarantined; resume skips it."""
        workload = get_workload("povray")
        journal = tmp_path / "poison.jsonl"
        chaos = ChaosPolicy(
            kill_probability=1.0, max_strikes_per_cell=99, seed=3,
        )  # every attempt dies
        report = run_resilient_sweep(
            [workload], ("4KB",), SETTINGS,
            journal_path=journal, workers=1, chaos=chaos,
            quarantine_after=2, backoff_s=0.0,
        )
        cell = report.cell("povray", "4KB")
        assert cell.status == "quarantined"
        assert "2 worker crashes" in cell.error
        rows = [json.loads(line) for line in journal.read_text().splitlines()]
        assert any(row.get("kind") == "quarantined" for row in rows[1:])

        resumed = run_resilient_sweep(
            [workload], ("4KB",), SETTINGS,
            journal_path=journal, workers=1, resume=True,
        )
        cell = resumed.cell("povray", "4KB")
        assert cell.status == "quarantined"
        assert cell.attempts == 2  # crash tally replayed from the journal
        assert cell.seconds == 0.0  # never re-dispatched

    def test_sigterm_mid_sweep_leaves_resumable_journal(self, tmp_path):
        """Graceful shutdown drains workers; resume completes byte-identically."""
        workload = get_workload("povray")
        configs = ("4KB", "THP", "TLB_Lite")
        clean = tmp_path / "clean.jsonl"
        run_resilient_sweep(
            [workload], configs, SETTINGS, journal_path=clean, workers=1,
        )

        journal = tmp_path / "interrupted.jsonl"
        fired = []

        def interrupt_after_first(cell):
            if not fired:
                fired.append(cell)
                signal.raise_signal(signal.SIGTERM)

        report = run_resilient_sweep(
            [workload], configs, SETTINGS,
            journal_path=journal, workers=1, progress=interrupt_after_first,
        )
        assert report.interrupted
        assert report.completed_count < len(configs)

        resumed = run_resilient_sweep(
            [workload], configs, SETTINGS,
            journal_path=journal, workers=1, resume=True,
        )
        assert not resumed.interrupted
        assert resumed.completed_count == len(configs)
        assert journal.read_bytes() == clean.read_bytes()

    def test_hung_worker_is_reclaimed_by_heartbeat(self):
        """A worker that stops heartbeating is SIGKILLed, not waited on."""
        workload = get_workload("povray")
        chaos = ChaosPolicy(hang_at_boundary=1, hang_seconds=600.0)
        report = run_supervised_sweep(
            [workload], ("THP",), SETTINGS,
            workers=1, chaos=chaos, heartbeat_timeout_s=0.5,
        )
        cell = report.cell("povray", "THP")
        assert cell.status == "timeout"
        assert "heartbeat" in cell.error

    def test_hard_timeout_sigkills_worker(self):
        """The wall-clock budget reclaims the CPU (unlike the thread hack)."""
        workload = get_workload("povray")
        slow = ExperimentSettings(trace_accesses=400_000, seed=5)
        report = run_supervised_sweep(
            [workload], ("THP",), slow, workers=1, cell_timeout_s=0.2,
        )
        cell = report.cell("povray", "THP")
        assert cell.status == "timeout"
        assert "wall-clock" in cell.error

    def test_old_journal_schema_version_is_rejected(self, tmp_path):
        """A v1 journal fails loudly instead of mis-parsing quarantine rows."""
        workload = get_workload("povray")
        journal = tmp_path / "old.jsonl"
        run_resilient_sweep(
            [workload], ("4KB",), SETTINGS, journal_path=journal, workers=1,
        )
        lines = journal.read_text().splitlines()
        header = json.loads(lines[0])
        header["journal_version"] = 1
        lines[0] = json.dumps(header, sort_keys=True)
        journal.write_text("\n".join(lines) + "\n")
        with pytest.raises(SweepError, match="schema version 1"):
            run_resilient_sweep(
                [workload], ("4KB",), SETTINGS,
                journal_path=journal, workers=1, resume=True,
            )
