"""Tests for the experiment drivers, normalisation, and rendering."""

import pytest

from repro.analysis.experiments import ExperimentSettings, run_matrix, run_workload_config
from repro.analysis.normalize import (
    average_ratio,
    normalized_energy,
    normalized_miss_cycles,
    reduction_percent,
)
from repro.analysis.report import percent, render_series, render_table
from repro.workloads.base import VMASpec, Workload
from repro.workloads.patterns import Mixture, UniformRandom, Zipf


def tiny_workload():
    def pattern(regions):
        return Mixture(
            [
                (Zipf(regions["heap"].subregion(0, 32), alpha=1.2, burst=4), 0.7),
                (UniformRandom(regions["heap"], burst=2), 0.3),
            ]
        )

    return Workload(
        "tinytest",
        "TEST",
        [VMASpec("heap", 16), VMASpec("stack", 1, thp_eligible=False)],
        pattern,
        instructions_per_access=3.0,
    )


SETTINGS = ExperimentSettings(trace_accesses=20_000, physical_bytes=1 << 28)


class TestExperimentDrivers:
    def test_run_workload_config_all_configs(self):
        workload = tiny_workload()
        for config in ("4KB", "THP", "TLB_Lite", "RMM", "TLB_PP", "RMM_Lite"):
            result = run_workload_config(workload, config, SETTINGS)
            assert result.configuration == config
            assert result.workload == "tinytest"
            assert result.total_energy_pj > 0

    def test_run_matrix_keys(self):
        results = run_matrix([tiny_workload()], ("4KB", "THP"), SETTINGS)
        assert set(results) == {("tinytest", "4KB"), ("tinytest", "THP")}

    def test_lite_interval_scaled_to_trace(self):
        assert ExperimentSettings(trace_accesses=10_000).scaled_lite_interval() == 10_000
        assert ExperimentSettings(trace_accesses=10_000_000).scaled_lite_interval() == 200_000

    def test_walk_ratio_knob_raises_energy(self):
        from repro.core.params import SimulationParams

        workload = tiny_workload()
        base = run_workload_config(workload, "4KB", SETTINGS)
        worse = run_workload_config(
            workload,
            "4KB",
            ExperimentSettings(
                trace_accesses=20_000,
                physical_bytes=1 << 28,
                sim_params=SimulationParams(walk_l1_hit_ratio=0.0),
            ),
        )
        assert worse.total_energy_pj > base.total_energy_pj


class TestNormalization:
    def test_normalized_metrics(self):
        results = run_matrix([tiny_workload()], ("4KB", "THP"), SETTINGS)
        ratio = normalized_energy(results, "tinytest", "THP")
        assert ratio == pytest.approx(
            results[("tinytest", "THP")].total_energy_pj
            / results[("tinytest", "4KB")].total_energy_pj
        )
        assert normalized_energy(results, "tinytest", "4KB") == 1.0
        assert normalized_miss_cycles(results, "tinytest", "4KB") == 1.0

    def test_average_ratio(self):
        assert average_ratio([1.0, 3.0]) == 2.0
        assert average_ratio([4.0, 1.0], geometric=True) == 2.0
        assert average_ratio([]) == 0.0
        with pytest.raises(ValueError):
            average_ratio([0.0], geometric=True)

    def test_reduction_percent(self):
        assert reduction_percent(0.77) == pytest.approx(23.0)


class TestRendering:
    def test_render_table(self):
        text = render_table(
            ["name", "value"], [["a", 1.5], ["bb", 2.25]], title="T"
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1]
        assert "1.500" in text
        assert "2.250" in text

    def test_render_table_row_length_checked(self):
        with pytest.raises(ValueError):
            render_table(["a", "b"], [["only-one"]])

    def test_render_series(self):
        text = render_series("mcf", [(0, 1.0), (25, 1.5)])
        assert text.startswith("mcf:")
        assert "25=1.500" in text

    def test_percent(self):
        assert percent(0.236) == "23.6%"


class TestReplication:
    def test_run_replicated_metrics(self):
        from repro.analysis.experiments import run_replicated

        metrics = run_replicated(
            tiny_workload(), "THP", SETTINGS, seeds=(1, 2, 3)
        )
        assert set(metrics) == {
            "energy_per_access_pj",
            "l1_mpki",
            "l2_mpki",
            "miss_cycles",
        }
        for metric in metrics.values():
            assert metric.minimum <= metric.mean <= metric.maximum
            assert len(metric.values) == 3
            assert metric.spread == metric.maximum - metric.minimum

    def test_replicas_actually_vary(self):
        from repro.analysis.experiments import run_replicated
        from repro.workloads.patterns import UniformRandom

        jittery = Workload(
            "jittery",
            "TEST",
            [VMASpec("heap", 50), VMASpec("stack", 1, thp_eligible=False)],
            lambda regions: UniformRandom(regions["heap"], burst=2),
            instructions_per_access=3.0,
        )
        metrics = run_replicated(jittery, "4KB", SETTINGS, seeds=(1, 2, 3))
        assert len(set(metrics["l1_mpki"].values)) > 1

    def test_single_seed(self):
        from repro.analysis.experiments import run_replicated

        metrics = run_replicated(tiny_workload(), "THP", SETTINGS, seeds=(9,))
        assert metrics["l1_mpki"].spread == 0.0
