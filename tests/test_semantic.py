"""Tests for the semantically partitioned TLB baseline."""

import pytest

from repro.analysis.experiments import ExperimentSettings, run_workload_config
from repro.core.organizations import build_organization, build_semantic, paging_policy_for
from repro.mem.paging import TransparentHugePaging
from repro.mem.physical import PhysicalMemory
from repro.mem.process import Process
from repro.mmu.translation import PAGES_PER_2MB
from repro.tlb.semantic import (
    GLOBALS,
    HEAP,
    STACK,
    SemanticPartitionedTLB,
    classify_by_vma,
)
from repro.tlb.set_assoc import SetAssociativeTLB


def make_process():
    process = Process(PhysicalMemory(1 << 30, seed=3), TransparentHugePaging())
    process.mmap(PAGES_PER_2MB * 2, name="heap")
    process.mmap(64, name="globals_seg", thp_eligible=False)
    process.mmap(64, name="stack", thp_eligible=False)
    return process


class TestClassifier:
    def test_classes_by_vma(self):
        process = make_process()
        classify = classify_by_vma(process.address_space)
        vmas = {vma.name: vma for vma in process.address_space}
        assert classify(vmas["heap"].start_vpn + 5) == HEAP
        assert classify(vmas["globals_seg"].start_vpn) == GLOBALS
        assert classify(vmas["stack"].start_vpn) == STACK

    def test_unknown_defaults_to_heap(self):
        process = make_process()
        classify = classify_by_vma(process.address_space)
        assert classify(0) == HEAP


class TestPartitionedStructure:
    def build(self):
        partitions = [
            SetAssociativeTLB("p-stack", 16, 4),
            SetAssociativeTLB("p-globals", 16, 4),
            SetAssociativeTLB("p-heap", 32, 4),
        ]
        # Classify by a simple modulo for structure-level tests.
        tlb = SemanticPartitionedTLB("sem", partitions, lambda vpn: vpn % 3)
        return tlb, partitions

    def test_routing(self):
        tlb, partitions = self.build()
        tlb.fill(3, "a")  # class 0
        tlb.fill(4, "b")  # class 1
        assert partitions[0].peek(3) == "a"
        assert partitions[1].peek(4) == "b"
        assert partitions[2].peek(3) is None
        assert tlb.lookup(3) == "a"

    def test_stats_summed_but_not_merged(self):
        tlb, partitions = self.build()
        tlb.lookup(0)
        tlb.fill(0, 0)
        tlb.lookup(0)
        tlb.sync_stats()
        assert tlb.stats.hits == 1
        assert tlb.stats.misses == 1
        # Per-way histograms live on the partitions (geometries differ).
        assert partitions[0].stats.lookups_by_ways == {4: 2}

    def test_reset_propagates(self):
        tlb, partitions = self.build()
        tlb.lookup(0)
        tlb.reset_stats()
        assert partitions[0].stats.lookups == 0

    def test_flush_and_invalidate(self):
        tlb, _ = self.build()
        tlb.fill(9, 9)
        assert tlb.invalidate(9)
        tlb.fill(9, 9)
        tlb.flush()
        assert tlb.occupancy() == 0

    def test_empty_partitions_rejected(self):
        with pytest.raises(ValueError):
            SemanticPartitionedTLB("sem", [], lambda vpn: 0)


class TestSemanticConfig:
    def test_builder_and_bindings(self):
        org = build_semantic(make_process())
        assert org.name == "Semantic"
        bound = {binding.name for binding in org.bindings}
        assert {"L1-4KB-stack", "L1-4KB-globals", "L1-4KB-heap"} <= bound

    def test_dispatch(self):
        assert isinstance(paging_policy_for("Semantic"), TransparentHugePaging)
        org = build_organization("Semantic", make_process())
        assert org.name == "Semantic"

    def test_probe_cost_is_partition_sized(self):
        from repro.energy.cacti import page_tlb_params

        org = build_semantic(make_process())
        binding = next(b for b in org.bindings if b.name == "L1-4KB-stack")
        assert binding.params_for_ways(4).read_pj < page_tlb_params(64, 4).read_pj

    def test_trade_off_visible_on_stack_heavy_workload(self):
        """Cheaper probes, but a stack tier larger than its partition
        costs misses — the partitioning literature's known trade-off."""
        from repro.workloads.registry import get_workload

        settings = ExperimentSettings(trace_accesses=60_000)
        thp = run_workload_config(get_workload("omnetpp"), "THP", settings)
        semantic = run_workload_config(get_workload("omnetpp"), "Semantic", settings)
        assert semantic.total_energy_pj < thp.total_energy_pj
        assert semantic.l1_mpki > thp.l1_mpki
