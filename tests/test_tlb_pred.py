"""Tests for the realistic (fallible-predictor) TLB_Pred configuration."""

import pytest

from repro.analysis.experiments import ExperimentSettings, run_workload_config_with_org
from repro.core.organizations import build_tlb_pred
from repro.mem.paging import TransparentHugePaging
from repro.mem.physical import PhysicalMemory
from repro.mem.process import Process
from repro.mmu.translation import PAGES_PER_2MB
from repro.workloads.base import VMASpec, Workload
from repro.workloads.patterns import Mixture, Zipf


def make_process():
    process = Process(PhysicalMemory(1 << 30, seed=3), TransparentHugePaging())
    process.mmap(PAGES_PER_2MB * 2, name="heap")
    process.mmap(64, name="stack", thp_eligible=False)
    return process


def mixed_size_workload():
    """Alternates a 2MB-backed heap and a 4KB-backed stack per access."""
    return Workload(
        "pred-mix",
        "TEST",
        [VMASpec("heap", 8), VMASpec("stack", 4, thp_eligible=False)],
        lambda regions: Mixture(
            [
                (Zipf(regions["heap"].subregion(0, 512), alpha=0.8, burst=2), 0.5),
                (Zipf(regions["stack"], alpha=0.8, burst=2), 0.5),
            ]
        ),
        instructions_per_access=3.0,
    )


class TestPredictor:
    def test_correct_prediction_single_probe(self):
        org = build_tlb_pred(make_process())
        h = org.hierarchy
        heap = 0x10000  # 2MB-backed
        h.access(heap)  # cold: predictor said 4KB, region is 2MB -> mispredict
        assert h.mispredictions == 1
        h.access(heap + 1)  # predictor now says 2MB: single probe, hit
        h.sync_stats()
        assert h.mispredictions == 1
        stats = h.l1_mixed.stats
        assert stats.lookups == 3  # 2 probes for the mispredict + 1

    def test_mispredict_retry_counts_as_l1_miss(self):
        org = build_tlb_pred(make_process())
        h = org.hierarchy
        heap = 0x10000
        h.access(heap)  # install (2MB), predictor trained
        # Poison the predictor via an aliasing 4KB access: stack VMA is
        # at a different chunk; force with a direct predictor write.
        index = (heap >> 9) & h._predictor_mask
        h._predictor[index] = False
        misses_before = h.l1_misses
        walks_before = h.l2_misses
        h.access(heap + 2)  # mispredict -> re-probe hits -> L1 miss tick
        assert h.l1_misses == misses_before + 1
        assert h.l2_misses == walks_before  # no walk: re-probe found it

    def test_misprediction_rate_reported(self):
        result, org = run_workload_config_with_org(
            mixed_size_workload(), "TLB_Pred", ExperimentSettings(trace_accesses=20_000)
        )
        assert 0.0 <= org.hierarchy.misprediction_rate < 0.5
        assert result.total_energy_pj > 0

    def test_invalid_predictor_size(self):
        with pytest.raises(Exception):
            build_tlb_pred(make_process(), predictor_entries=100)


class TestAgainstIdealisation:
    def test_costs_at_least_tlb_pp(self):
        """The realistic predictor can only add probes vs the perfect one."""
        workload = mixed_size_workload()
        settings = ExperimentSettings(trace_accesses=20_000)
        pp, _ = run_workload_config_with_org(workload, "TLB_PP", settings)
        pred, org = run_workload_config_with_org(workload, "TLB_Pred", settings)
        assert pred.total_energy_pj >= pp.total_energy_pj * 0.999
        assert pred.miss_cycles >= pp.miss_cycles
        # The extra L1 probes equal the mispredictions (each re-probes once).
        extra_lookups = (
            pred.structure_stats["L1-mixed"].lookups
            - pp.structure_stats["L1-mixed"].lookups
        )
        assert extra_lookups == org.hierarchy.mispredictions

    def test_same_walk_behaviour(self):
        workload = mixed_size_workload()
        settings = ExperimentSettings(trace_accesses=20_000)
        pp, _ = run_workload_config_with_org(workload, "TLB_PP", settings)
        pred, _ = run_workload_config_with_org(workload, "TLB_Pred", settings)
        assert pred.l2_misses == pp.l2_misses
