"""Tests for the configuration parameter dataclasses."""

import pytest

from repro.core.params import (
    RMM_LITE_PARAMS,
    TLB_LITE_PARAMS,
    ConfigurationSummary,
    HierarchyParams,
    LiteParams,
    SetAssocParams,
    SimulationParams,
)


class TestSetAssocParams:
    def test_sets(self):
        assert SetAssocParams(64, 4).sets == 16
        assert SetAssocParams(512, 4).sets == 128


class TestHierarchyParams:
    def test_sandy_bridge_defaults(self):
        params = HierarchyParams()
        assert params.l1_4kb == SetAssocParams(64, 4)
        assert params.l1_2mb == SetAssocParams(32, 4)
        assert params.l1_1gb_entries == 4
        assert params.l2_page == SetAssocParams(512, 4)
        assert params.l1_range_entries == 4
        assert params.l2_range_entries == 32

    def test_with_l1_4kb_copies_everything_else(self):
        params = HierarchyParams().with_l1_4kb(16, 1)
        assert params.l1_4kb == SetAssocParams(16, 1)
        assert params.l1_2mb == HierarchyParams().l1_2mb
        assert params.l2_range_entries == 32


class TestLiteParams:
    def test_paper_defaults(self):
        assert TLB_LITE_PARAMS.threshold_mode == "relative"
        assert TLB_LITE_PARAMS.epsilon_relative == 0.125
        assert RMM_LITE_PARAMS.threshold_mode == "absolute"
        assert RMM_LITE_PARAMS.epsilon_absolute == 0.1

    def test_threshold_relative(self):
        params = LiteParams(threshold_mode="relative", epsilon_relative=0.125)
        assert params.threshold(8.0) == pytest.approx(9.0)
        assert params.threshold(0.0) == 0.0

    def test_threshold_absolute(self):
        params = LiteParams(threshold_mode="absolute", epsilon_absolute=0.1)
        assert params.threshold(0.0) == pytest.approx(0.1)
        assert params.threshold(5.0) == pytest.approx(5.1)

    def test_validation(self):
        with pytest.raises(ValueError):
            LiteParams(threshold_mode="nope")
        with pytest.raises(ValueError):
            LiteParams(interval_instructions=0)
        with pytest.raises(ValueError):
            LiteParams(reactivate_probability=1.5)
        with pytest.raises(ValueError):
            LiteParams(min_ways=0)


class TestSimulationParams:
    def test_defaults(self):
        params = SimulationParams()
        assert params.fast_forward_fraction == 0.1
        assert params.walk_l1_hit_ratio == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            SimulationParams(fast_forward_fraction=1.0)
        with pytest.raises(ValueError):
            SimulationParams(timeline_windows=0)


class TestConfigurationSummary:
    def test_render_with_all_fields(self):
        summary = ConfigurationSummary(
            "X", ("4KB", "range"), ("L1 a", "L2 b"), lite="ε stuff", notes="note"
        )
        text = summary.render()
        assert text.splitlines()[0] == "X: pages 4KB+range"
        assert "  - L1 a" in text
        assert "Lite: ε stuff" in text
        assert "(note)" in text

    def test_render_minimal(self):
        text = ConfigurationSummary("Y", ("4KB",), ()).render()
        assert text == "Y: pages 4KB"
