"""reprolint framework tests: rules, suppressions, baseline, CLI, repo health.

The fixtures under ``tests/lint_fixtures/`` are never imported — they are
source material for the AST pass, one file of known violations per rule.
"""

from __future__ import annotations

import json
import subprocess
import sys
from collections import Counter
from pathlib import Path

import pytest

from repro.lint import Baseline, Finding, Severity, default_rules, lint_paths
from repro.lint.engine import LintConfigError, PassManager, iter_python_files

TESTS_DIR = Path(__file__).resolve().parent
REPO_ROOT = TESTS_DIR.parent
FIXTURES = TESTS_DIR / "lint_fixtures"

#: rule id -> (fixture file, minimum expected findings of that rule)
RULE_FIXTURES = {
    "RL001": ("rl001_determinism.py", 10),
    "RL002": ("rl002_taxonomy.py", 4),
    "RL003": ("rl003_hot_path.py", 8),
    "RL004": ("rl004_stats.py", 2),
    "RL005": ("rl005_pow2.py", 2),
    "RL006": ("rl006_mutable_default.py", 3),
    "RL007": ("rl007_checkpoint.py", 5),
    "RL008": ("rl008_interproc.py", 3),
    "RL009": ("rl009_process.py", 5),
    "RL010": ("rl010_chaining.py", 2),
}


def lint_file(path: Path, root: Path | None = None) -> list[Finding]:
    return lint_paths([path], root=root or REPO_ROOT)


# ---------------------------------------------------------------------------
# Per-rule fixtures
# ---------------------------------------------------------------------------


class TestRuleFixtures:
    @pytest.mark.parametrize("rule_id", sorted(RULE_FIXTURES))
    def test_fixture_violations_detected(self, rule_id):
        fixture, expected = RULE_FIXTURES[rule_id]
        findings = lint_file(FIXTURES / fixture)
        matching = [f for f in findings if f.rule == rule_id]
        assert len(matching) >= expected, [f.render() for f in findings]

    @pytest.mark.parametrize("rule_id", sorted(RULE_FIXTURES))
    def test_fixture_findings_carry_locations(self, rule_id):
        fixture, _ = RULE_FIXTURES[rule_id]
        for finding in lint_file(FIXTURES / fixture):
            assert finding.line >= 1
            assert finding.path.endswith(fixture)
            assert finding.message
            assert finding.hint

    def test_blessed_idioms_stay_clean(self, tmp_path):
        clean = tmp_path / "clean.py"
        clean.write_text(
            "import random\n"
            "from repro.errors import SimulationError\n"
            "\n"
            "def run(seed: int, values=None):\n"
            "    rng = random.Random(seed)\n"
            "    if values is None:\n"
            "        raise SimulationError('no values')\n"
            "    return rng.sample(values, 1)\n"
        )
        assert lint_file(clean, root=tmp_path) == []

    def test_rl003_only_fires_on_hot_methods(self):
        findings = lint_file(FIXTURES / "rl003_hot_path.py")
        assert not any("cold_report" in f.message for f in findings)

    def test_rl003_flags_telemetry_in_hot_methods(self):
        findings = lint_file(FIXTURES / "rl003_hot_path.py")
        telemetry = [f for f in findings if "telemetry" in f.message]
        assert len(telemetry) == 2
        assert any("perf_counter" in f.message for f in telemetry)
        assert any("self.obs.instant" in f.message for f in telemetry)

    def test_rl005_guarded_constructor_passes(self):
        findings = lint_file(FIXTURES / "rl005_pow2.py")
        assert not any("GuardedTLB" in f.message for f in findings)


# ---------------------------------------------------------------------------
# Inline suppression
# ---------------------------------------------------------------------------


class TestSuppression:
    def test_inline_disable_same_line(self, tmp_path):
        source = tmp_path / "s.py"
        source.write_text(
            "def bad(values=[]):  # reprolint: disable=RL006\n    return values\n"
        )
        assert lint_file(source, root=tmp_path) == []

    def test_disable_comment_on_previous_line(self, tmp_path):
        source = tmp_path / "s.py"
        source.write_text(
            "# reprolint: disable=RL006\ndef bad(values=[]):\n    return values\n"
        )
        assert lint_file(source, root=tmp_path) == []

    def test_disable_wrong_rule_does_not_suppress(self, tmp_path):
        source = tmp_path / "s.py"
        source.write_text(
            "def bad(values=[]):  # reprolint: disable=RL001\n    return values\n"
        )
        findings = lint_file(source, root=tmp_path)
        assert [f.rule for f in findings] == ["RL006"]

    def test_disable_all(self, tmp_path):
        source = tmp_path / "s.py"
        source.write_text(
            "def bad(values=[]):  # reprolint: disable=all\n    return values\n"
        )
        assert lint_file(source, root=tmp_path) == []

    def test_disable_list_of_rules(self, tmp_path):
        source = tmp_path / "s.py"
        source.write_text(
            "import random\n"
            "# reprolint: disable=RL001, RL006\n"
            "def bad(values=[], r=random.random()):\n"
            "    return values\n"
        )
        assert lint_file(source, root=tmp_path) == []

    def test_disable_on_decorator_line_covers_the_def(self, tmp_path):
        source = tmp_path / "s.py"
        source.write_text(
            "def deco(fn):\n"
            "    return fn\n"
            "\n"
            "@deco  # reprolint: disable=RL006\n"
            "def bad(values=[]):\n"
            "    return values\n"
        )
        assert lint_file(source, root=tmp_path) == []

    def test_disable_above_multiline_statement_covers_all_lines(self, tmp_path):
        source = tmp_path / "s.py"
        source.write_text(
            "import time\n"
            "# reprolint: disable=RL001\n"
            "seed = (\n"
            "    time.time()\n"
            ")\n"
        )
        assert lint_file(source, root=tmp_path) == []

    def test_disable_on_multiline_signature_covers_the_header(self, tmp_path):
        source = tmp_path / "s.py"
        source.write_text(
            "def bad(  # reprolint: disable=RL006\n"
            "    values=[],\n"
            "):\n"
            "    return values\n"
        )
        assert lint_file(source, root=tmp_path) == []

    def test_disable_on_def_does_not_blanket_the_body(self, tmp_path):
        source = tmp_path / "s.py"
        source.write_text(
            "def outer(values=[]):  # reprolint: disable=RL006\n"
            "    def inner(more=[]):\n"
            "        return more\n"
            "    return values, inner\n"
        )
        findings = lint_file(source, root=tmp_path)
        assert [f.rule for f in findings] == ["RL006"]
        assert findings[0].line == 2


# ---------------------------------------------------------------------------
# Baseline
# ---------------------------------------------------------------------------


class TestBaseline:
    def test_round_trip(self, tmp_path):
        findings = lint_file(FIXTURES / "rl006_mutable_default.py")
        baseline = Baseline.from_findings(findings)
        path = tmp_path / "baseline.json"
        baseline.save(path)
        loaded = Baseline.load(path)
        assert loaded.entries == baseline.entries
        new, baselined = loaded.partition(findings)
        assert new == []
        assert len(baselined) == len(findings)
        assert all(f.baselined for f in baselined)

    def test_missing_file_is_empty(self, tmp_path):
        baseline = Baseline.load(tmp_path / "absent.json")
        assert len(baseline) == 0

    def test_new_finding_not_covered(self):
        findings = lint_file(FIXTURES / "rl006_mutable_default.py")
        baseline = Baseline.from_findings(findings[:-1])
        # the extra occurrence of the last fingerprint is new
        new, _ = baseline.partition(findings)
        assert len(new) == 1

    def test_fingerprint_survives_line_shift(self, tmp_path):
        source = tmp_path / "s.py"
        source.write_text("def bad(values=[]):\n    return values\n")
        baseline = Baseline.from_findings(lint_file(source, root=tmp_path))
        # unrelated edit above the finding: the fingerprint must still match
        source.write_text(
            "# a comment\n\n\ndef bad(values=[]):\n    return values\n"
        )
        new, baselined = baseline.partition(lint_file(source, root=tmp_path))
        assert new == []
        assert len(baselined) == 1

    def test_corrupt_baseline_raises(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text("{not json")
        with pytest.raises(ValueError):
            Baseline.load(path)
        path.write_text(json.dumps({"version": 99, "entries": []}))
        with pytest.raises(ValueError):
            Baseline.load(path)


# ---------------------------------------------------------------------------
# Engine
# ---------------------------------------------------------------------------


class TestEngine:
    def test_duplicate_rule_ids_rejected(self):
        rules = default_rules()
        with pytest.raises(LintConfigError):
            PassManager(rules + [type(rules[0])()])

    def test_unparseable_file_is_reported_not_fatal(self, tmp_path):
        bad = tmp_path / "broken.py"
        bad.write_text("def broken(:\n")
        manager = PassManager(default_rules())
        assert manager.lint_file(bad, tmp_path) == []
        assert manager.parse_failures
        assert "SyntaxError" in manager.parse_failures[0][1]

    def test_iter_python_files_skips_pycache(self, tmp_path):
        (tmp_path / "__pycache__").mkdir()
        (tmp_path / "__pycache__" / "x.py").write_text("")
        (tmp_path / "a.py").write_text("")
        files = list(iter_python_files(tmp_path))
        assert [f.name for f in files] == ["a.py"]

    def test_missing_path_raises(self):
        with pytest.raises(LintConfigError):
            list(iter_python_files(Path("/nonexistent/reprolint")))

    def test_severities_are_assigned(self):
        by_rule = {rule.rule_id: rule.severity for rule in default_rules()}
        assert by_rule["RL001"] is Severity.ERROR
        assert by_rule["RL002"] is Severity.WARNING
        assert by_rule["RL003"] is Severity.ERROR
        assert by_rule["RL006"] is Severity.ERROR


# ---------------------------------------------------------------------------
# CLI (subprocess: the real entry point, exit codes included)
# ---------------------------------------------------------------------------


def run_cli(*args, cwd=None):
    return subprocess.run(
        [sys.executable, "-m", "repro", "lint", *args],
        capture_output=True,
        text=True,
        cwd=cwd or REPO_ROOT,
        env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin"},
    )


class TestCLI:
    def test_repo_is_strict_clean(self):
        """The acceptance criterion: baseline covers every repo finding."""
        result = run_cli("--strict")
        assert result.returncode == 0, result.stdout + result.stderr

    @pytest.mark.parametrize("rule_id", sorted(RULE_FIXTURES))
    def test_each_fixture_fails_strict(self, rule_id):
        fixture, _ = RULE_FIXTURES[rule_id]
        result = run_cli("--strict", str(FIXTURES / fixture))
        assert result.returncode == 1, result.stdout + result.stderr
        assert rule_id in result.stdout

    def test_json_format(self):
        result = run_cli("--format=json", str(FIXTURES / "rl006_mutable_default.py"))
        payload = json.loads(result.stdout)
        assert payload["counts"].get("RL006", 0) >= 3
        assert all("rule" in f for f in payload["findings"])

    def test_rule_filter(self):
        result = run_cli(
            "--rules=RL002", "--strict", str(FIXTURES / "rl001_determinism.py")
        )
        assert result.returncode == 0, result.stdout + result.stderr

    def test_unknown_rule_filter_exits_2(self):
        result = run_cli("--rules=RL999", str(FIXTURES))
        assert result.returncode == 2

    def test_update_baseline_round_trip(self, tmp_path):
        """--update-baseline then a clean --strict run, then a regression."""
        project = tmp_path / "proj"
        project.mkdir()
        source = project / "mod.py"
        source.write_text("def bad(values=[]):\n    return values\n")
        assert run_cli("mod.py", "--strict", cwd=project).returncode == 1
        update = run_cli("mod.py", "--update-baseline", cwd=project)
        assert update.returncode == 0, update.stdout + update.stderr
        assert (project / ".reprolint-baseline.json").exists()
        assert run_cli("mod.py", "--strict", cwd=project).returncode == 0
        # a second, new violation is not covered by the baseline
        source.write_text(
            "def bad(values=[]):\n    return values\n\n"
            "def worse(mapping={}):\n    return mapping\n"
        )
        regression = run_cli("mod.py", "--strict", cwd=project)
        assert regression.returncode == 1
        assert "worse" in regression.stdout


# ---------------------------------------------------------------------------
# Repo health: the contracts the rules pin must actually hold here
# ---------------------------------------------------------------------------


class TestRepoContracts:
    @pytest.fixture(scope="class")
    def repo_findings(self):
        return lint_paths([REPO_ROOT / "src" / "repro"], root=REPO_ROOT)

    def test_no_determinism_violations(self, repo_findings):
        assert [f.render() for f in repo_findings if f.rule == "RL001"] == []

    def test_no_unguarded_pow2_constructors(self, repo_findings):
        assert [f.render() for f in repo_findings if f.rule == "RL005"] == []

    def test_no_mutable_defaults(self, repo_findings):
        assert [f.render() for f in repo_findings if f.rule == "RL006"] == []

    def test_tlb_geometry_errors_use_taxonomy(self):
        """The satellite migration: bad geometry raises ConfigurationError."""
        from repro.errors import ConfigurationError, ReproError
        from repro.tlb.banked import BankedSetAssociativeTLB
        from repro.tlb.mixed_fa import MixedFullyAssociativeTLB
        from repro.tlb.replacement import PLRUSetAssociativeTLB

        cases = [
            lambda: MixedFullyAssociativeTLB("t", 0),
            lambda: PLRUSetAssociativeTLB("t", 48, 3),
            lambda: BankedSetAssociativeTLB("t", 64, 4, 3),
            lambda: BankedSetAssociativeTLB("t", 64, 3, 2),
        ]
        for build in cases:
            with pytest.raises(ConfigurationError) as excinfo:
                build()
            # double-derivation keeps historical except ValueError sites alive
            assert isinstance(excinfo.value, ValueError)
            assert isinstance(excinfo.value, ReproError)

    def test_baseline_only_ratchets_expected_rules(self):
        baseline = Baseline.load(REPO_ROOT / ".reprolint-baseline.json")
        rules = Counter(rule for rule, _, _ in baseline.entries)
        assert set(rules) <= {"RL002", "RL004"}, rules

    def test_process_break_huge_pages_is_seed_threaded(self):
        """The satellite fix: the RNG rides the Process seed."""
        from repro.mem.paging import TransparentHugePaging
        from repro.mem.physical import PhysicalMemory
        from repro.mem.process import Process

        def build(seed):
            process = Process(
                PhysicalMemory(1 << 28, seed=1),
                TransparentHugePaging(),
                seed=seed,
            )
            process.mmap(512 * 8, name="heap")
            process.break_huge_pages(0.5)
            return sorted(
                leaf.vpn
                for leaf in process.page_table.iter_translations()
                if int(leaf.page_size) == 512
            )

        assert build(7) == build(7)
        assert build(7) != build(8)
