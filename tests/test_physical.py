"""Unit and property tests for the buddy frame allocator."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mem.physical import OutOfMemoryError, PhysicalMemory


class TestBasics:
    def test_total_frames(self, physical):
        assert physical.total_frames == (1 << 30) >> 12

    def test_invalid_size_rejected(self):
        with pytest.raises(ValueError):
            PhysicalMemory(total_bytes=5000)
        with pytest.raises(ValueError):
            PhysicalMemory(total_bytes=0)

    def test_alloc_block_alignment(self, physical):
        for order in (0, 3, 9, 12):
            pfn = physical.alloc_block(order)
            assert pfn % (1 << order) == 0

    def test_alloc_block_accounting(self, physical):
        free_before = physical.frames_free
        physical.alloc_block(9)
        assert physical.frames_free == free_before - 512

    def test_free_block_merges_back(self, physical):
        free_before = physical.frames_free
        pfn = physical.alloc_block(9)
        physical.free_block(pfn, 9)
        assert physical.frames_free == free_before

    def test_out_of_memory(self):
        tiny = PhysicalMemory(total_bytes=1 << 20)  # 256 frames
        tiny.alloc_block(8)  # whole arena
        with pytest.raises(OutOfMemoryError):
            tiny.alloc_block(8)

    def test_invalid_order(self, physical):
        with pytest.raises(ValueError):
            physical.alloc_block(-1)
        # Requests beyond the arena are allocation failures, not bugs —
        # policies catch them and degrade.
        with pytest.raises(OutOfMemoryError):
            physical.alloc_block(physical.max_order + 1)

    def test_misaligned_free_rejected(self, physical):
        with pytest.raises(ValueError):
            physical.free_block(1, 3)


class TestContiguous:
    def test_exact_length(self, physical):
        free_before = physical.frames_free
        pfn = physical.alloc_contiguous(300)
        assert physical.frames_free == free_before - 300
        physical.free_contiguous(pfn, 300)
        assert physical.frames_free == free_before

    def test_2mb_alignment_of_large_runs(self, physical):
        # Runs >= 512 pages start on a block aligned to their covering
        # power of two, so 2MB-aligned offsets stay 2MB-aligned.
        pfn = physical.alloc_contiguous(1000)
        assert pfn % 512 == 0

    def test_invalid_npages(self, physical):
        with pytest.raises(ValueError):
            physical.alloc_contiguous(0)

    def test_runs_do_not_overlap(self, physical):
        runs = [(physical.alloc_contiguous(100), 100) for _ in range(10)]
        claimed = set()
        for pfn, npages in runs:
            span = set(range(pfn, pfn + npages))
            assert not span & claimed
            claimed |= span


class TestScatteredFrames:
    def test_frames_unique(self, physical):
        frames = physical.alloc_frames(5000)
        assert len(set(frames)) == 5000

    def test_frames_are_shuffled(self, physical):
        frames = physical.alloc_frames(1000)
        ascending = sum(1 for a, b in zip(frames, frames[1:]) if b == a + 1)
        assert ascending < 100  # far from contiguous

    def test_deterministic_given_seed(self):
        a = PhysicalMemory(1 << 28, seed=5).alloc_frames(500)
        b = PhysicalMemory(1 << 28, seed=5).alloc_frames(500)
        assert a == b

    def test_different_seeds_differ(self):
        a = PhysicalMemory(1 << 28, seed=5).alloc_frames(500)
        b = PhysicalMemory(1 << 28, seed=6).alloc_frames(500)
        assert a != b

    def test_free_frame_returns_capacity(self, physical):
        frames = physical.alloc_frames(100)
        used_before = physical.frames_used
        for pfn in frames:
            physical.free_frame(pfn)
        assert physical.frames_used == used_before - 100

    def test_fragment_pins_fraction(self, physical):
        free_before = physical.frames_free
        pinned = physical.fragment(0.25)
        assert len(pinned) == int(free_before * 0.25)
        with pytest.raises(ValueError):
            physical.fragment(1.5)


class TestExhaustion:
    def test_exhaust_and_recover(self):
        mem = PhysicalMemory(1 << 22, seed=1)  # 1024 frames
        blocks = []
        while True:
            try:
                blocks.append(mem.alloc_block(4))
            except OutOfMemoryError:
                break
        assert mem.frames_free == 0
        for pfn in blocks:
            mem.free_block(pfn, 4)
        assert mem.frames_free == 1024
        # After merging we can allocate the whole arena again.
        assert mem.alloc_block(10) == 0


@settings(max_examples=40, deadline=None)
@given(
    ops=st.lists(
        st.tuples(st.sampled_from(["block", "contig", "frame"]), st.integers(0, 8)),
        min_size=1,
        max_size=60,
    )
)
def test_allocations_never_overlap_and_frees_conserve(ops):
    """No two live allocations share a frame; freeing restores capacity."""
    mem = PhysicalMemory(1 << 24, seed=2)  # 4096 frames
    live: list[tuple[str, int, int]] = []
    claimed: set[int] = set()
    for kind, size in ops:
        try:
            if kind == "block":
                pfn = mem.alloc_block(size % 6)
                npages = 1 << (size % 6)
            elif kind == "contig":
                npages = size * 37 + 1
                pfn = mem.alloc_contiguous(npages)
            else:
                pfn = mem.alloc_frame()
                npages = 1
        except OutOfMemoryError:
            continue
        span = set(range(pfn, pfn + npages))
        assert not span & claimed
        claimed |= span
        live.append((kind, pfn, npages))
    for kind, pfn, npages in live:
        if kind == "block":
            mem.free_block(pfn, npages.bit_length() - 1)
        elif kind == "contig":
            mem.free_contiguous(pfn, npages)
        else:
            mem.free_frame(pfn)
    # Scatter-pool frames stay parked, everything else is free again.
    assert mem.frames_free + len(mem._scatter_pool) == mem.total_frames
