"""Statistical robustness: the headline ratios are stable across seeds.

The paper's conclusions must not hinge on one random trace realisation;
these tests re-run a scaled-down Figure 10 slice under different seeds
and assert the energy ratios stay in a tight band.
"""

import pytest

from repro.analysis.experiments import ExperimentSettings, run_workload_config
from repro.resilience.auditor import InvariantAuditor
from repro.workloads.registry import get_workload

SEEDS = (11, 22, 33)


@pytest.fixture(scope="module")
def ratios():
    workload = get_workload("cactusADM")
    out = {"TLB_Lite": [], "RMM_Lite": []}
    for seed in SEEDS:
        settings = ExperimentSettings(trace_accesses=80_000, seed=seed)
        thp = run_workload_config(workload, "THP", settings)
        for config in out:
            result = run_workload_config(workload, config, settings)
            out[config].append(result.total_energy_pj / thp.total_energy_pj)
    return out


class TestSeedStability:
    def test_tlb_lite_ratio_band(self, ratios):
        values = ratios["TLB_Lite"]
        assert max(values) - min(values) < 0.15
        assert all(value < 0.95 for value in values)

    def test_rmm_lite_ratio_band(self, ratios):
        values = ratios["RMM_Lite"]
        assert max(values) - min(values) < 0.1
        assert all(value < 0.5 for value in values)


class TestAuditedStability:
    def test_auditor_does_not_change_results(self, ratios):
        """The invariant auditor is read-only: enabling it must reproduce
        the unaudited energy ratio bit for bit."""
        workload = get_workload("cactusADM")
        settings = ExperimentSettings(trace_accesses=80_000, seed=SEEDS[0])
        auditor = InvariantAuditor()
        thp = run_workload_config(workload, "THP", settings, auditor=auditor)
        lite = run_workload_config(workload, "TLB_Lite", settings, auditor=auditor)
        audited_ratio = lite.total_energy_pj / thp.total_energy_pj
        assert audited_ratio == ratios["TLB_Lite"][0]
        assert auditor.checks_run > 0
        assert not auditor.violations


class TestTraceLengthStability:
    def test_ratio_insensitive_to_trace_length(self):
        """Doubling the trace length moves the energy ratio only mildly."""
        workload = get_workload("omnetpp")
        values = []
        for accesses in (60_000, 120_000):
            settings = ExperimentSettings(trace_accesses=accesses, seed=7)
            thp = run_workload_config(workload, "THP", settings)
            lite = run_workload_config(workload, "RMM_Lite", settings)
            values.append(lite.total_energy_pj / thp.total_energy_pj)
        assert abs(values[0] - values[1]) < 0.15
