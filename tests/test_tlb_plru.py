"""Unit tests for the tree-PLRU ablation TLB."""

import pytest

from repro.tlb.replacement import PLRUSetAssociativeTLB


class TestPLRU:
    def test_basic_hit_miss(self):
        tlb = PLRUSetAssociativeTLB("p", 16, 4)
        assert tlb.lookup(3) is None
        tlb.fill(3, "v")
        assert tlb.lookup(3) == "v"

    def test_capacity(self):
        tlb = PLRUSetAssociativeTLB("p", 16, 4)
        for key in range(0, 64, 4):  # all set 0
            tlb.fill(key, key)
        assert tlb.occupancy() == 4

    def test_victim_prefers_invalid_slot(self):
        tlb = PLRUSetAssociativeTLB("p", 16, 4)
        tlb.fill(0, 0)
        tlb.fill(4, 4)
        assert tlb.peek(0) is not None
        assert tlb.occupancy() == 2  # no eviction while slots free

    def test_recently_touched_way_survives(self):
        tlb = PLRUSetAssociativeTLB("p", 16, 4)
        for key in (0, 4, 8, 12):
            tlb.fill(key, key)
        tlb.lookup(0)  # tree now points away from 0's way
        tlb.fill(16, 16)
        assert tlb.lookup(0) == 0  # 0 not the victim right after touch

    def test_fill_existing_updates_value(self):
        tlb = PLRUSetAssociativeTLB("p", 16, 4)
        tlb.fill(0, "a")
        tlb.fill(0, "b")
        assert tlb.lookup(0) == "b"
        assert tlb.occupancy() == 1

    def test_invalidate(self):
        tlb = PLRUSetAssociativeTLB("p", 16, 4)
        tlb.fill(0, "a")
        assert tlb.invalidate(0)
        assert not tlb.invalidate(0)

    def test_flush(self):
        tlb = PLRUSetAssociativeTLB("p", 16, 4)
        for key in range(8):
            tlb.fill(key, key)
        tlb.flush()
        assert tlb.occupancy() == 0

    def test_way_disabling_restricts_and_invalidates(self):
        tlb = PLRUSetAssociativeTLB("p", 16, 4)
        for key in range(0, 16, 4):
            tlb.fill(key, key)
        tlb.set_active_ways(2)
        assert tlb.occupancy() <= 2 * 4
        # After downsize, fills stay within 2 ways per set.
        for key in range(0, 64, 4):
            tlb.fill(key, key)
        assert sum(1 for pair in tlb._slots[0] if pair is not None) == 2

    def test_upsize_no_stale(self):
        tlb = PLRUSetAssociativeTLB("p", 16, 4)
        for key in (0, 4, 8, 12):
            tlb.fill(key, key)
        tlb.set_active_ways(1)
        tlb.set_active_ways(4)
        assert tlb.occupancy() <= 4

    def test_invalid_ways_rejected(self):
        tlb = PLRUSetAssociativeTLB("p", 16, 4)
        with pytest.raises(ValueError):
            tlb.set_active_ways(3)
        with pytest.raises(ValueError):
            tlb.set_active_ways(8)

    def test_stats(self):
        tlb = PLRUSetAssociativeTLB("p", 16, 4)
        tlb.lookup(1)
        tlb.fill(1, 1)
        tlb.lookup(1)
        tlb.sync_stats()
        assert tlb.stats.hits == 1
        assert tlb.stats.misses == 1
        assert tlb.stats.lookups_by_ways == {4: 2}

    def test_hit_ratio_reasonable_vs_lru(self):
        """PLRU approximates LRU: same hot-set workload, similar hit ratio."""
        from repro.tlb.set_assoc import SetAssociativeTLB
        import random

        rnd = random.Random(3)
        keys = [rnd.randrange(24) for _ in range(4000)]
        plru = PLRUSetAssociativeTLB("p", 16, 4)
        lru = SetAssociativeTLB("l", 16, 4)
        for key in keys:
            if plru.lookup(key) is None:
                plru.fill(key, key)
            if lru.lookup(key) is None:
                lru.fill(key, key)
        plru.sync_stats()
        lru.sync_stats()
        assert abs(plru.stats.hit_ratio - lru.stats.hit_ratio) < 0.1
