"""Unit tests for the paging-structure caches (MMU cache)."""

from repro.mmu.mmu_cache import MMUCache, MMUCacheConfig
from repro.mmu.translation import PageSize


def sync(cache):
    for structure in cache.structures:
        structure.sync_stats()


class TestProbe:
    def test_cold_probe_skips_nothing(self):
        cache = MMUCache()
        assert cache.probe(12345, PageSize.SIZE_4KB) == 0

    def test_all_structures_charged_per_probe(self):
        cache = MMUCache()
        cache.probe(1, PageSize.SIZE_4KB)
        cache.probe(2, PageSize.SIZE_2MB)
        sync(cache)
        for structure in cache.structures:
            assert structure.stats.lookups == 2

    def test_pde_hit_skips_three_levels_for_4kb(self):
        cache = MMUCache()
        cache.fill(1000, PageSize.SIZE_4KB)
        assert cache.probe(1000, PageSize.SIZE_4KB) == 3
        # A different page in the same 2MB region shares the PDE.
        assert cache.probe(1001, PageSize.SIZE_4KB) == 3

    def test_pde_hit_does_not_help_2mb_walk(self):
        cache = MMUCache()
        cache.fill(1000, PageSize.SIZE_4KB)  # fills PDE+PDPTE+PML4
        # For a 2MB page the PDE is the leaf; best help is the PDPTE.
        assert cache.probe(1000, PageSize.SIZE_2MB) == 2

    def test_pdpte_hit_does_not_help_1gb_walk(self):
        cache = MMUCache()
        cache.fill(1000, PageSize.SIZE_2MB)  # fills PDPTE+PML4
        assert cache.probe(1000, PageSize.SIZE_1GB) == 1  # PML4 only

    def test_pml4_hit_only(self):
        cache = MMUCache()
        cache.fill(0, PageSize.SIZE_1GB)  # fills PML4 only
        assert cache.probe(0, PageSize.SIZE_4KB) == 1

    def test_different_pml4_region_misses(self):
        cache = MMUCache()
        cache.fill(0, PageSize.SIZE_4KB)
        far = 1 << 27  # different PML4 entry
        assert cache.probe(far, PageSize.SIZE_4KB) == 0


class TestFill:
    def test_fill_levels_by_size(self):
        cache = MMUCache()
        cache.fill(0, PageSize.SIZE_1GB)
        sync(cache)
        assert cache.pml4.stats.fills == 1
        assert cache.pdpte.stats.fills == 0
        cache.fill(0, PageSize.SIZE_2MB)
        sync(cache)
        assert cache.pdpte.stats.fills == 1
        assert cache.pde.stats.fills == 0
        cache.fill(0, PageSize.SIZE_4KB)
        sync(cache)
        assert cache.pde.stats.fills == 1

    def test_refill_of_present_entry_free(self):
        cache = MMUCache()
        cache.fill(0, PageSize.SIZE_4KB)
        cache.fill(1, PageSize.SIZE_4KB)  # same PDE/PDPTE/PML4
        sync(cache)
        assert cache.pde.stats.fills == 1
        assert cache.pml4.stats.fills == 1

    def test_capacity_eviction_in_pml4(self):
        cache = MMUCache()
        for region in range(3):  # PML4 cache holds 2 entries
            cache.fill(region << 27, PageSize.SIZE_1GB)
        assert cache.probe(0, PageSize.SIZE_4KB) == 0  # evicted

    def test_flush(self):
        cache = MMUCache()
        cache.fill(0, PageSize.SIZE_4KB)
        cache.flush()
        assert cache.probe(0, PageSize.SIZE_4KB) == 0

    def test_custom_config(self):
        cache = MMUCache(MMUCacheConfig(pde_entries=8, pde_ways=2, pdpte_entries=2, pml4_entries=1))
        assert cache.pde.entries == 8
        assert cache.pdpte.entries == 2
        assert cache.pml4.entries == 1
