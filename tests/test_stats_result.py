"""Tests for SimulationResult helpers and TLBStats bookkeeping."""

import pytest

from repro.core.stats import SimulationResult, TimelineSample
from repro.energy.model import EnergyBreakdown
from repro.energy.performance import miss_cycles
from repro.tlb.base import TLBStats


def make_result(**overrides):
    stats_4kb = TLBStats()
    stats_4kb.hits = 90
    stats_4kb.misses = 10
    stats_4kb.lookups_by_ways.update({4: 60, 2: 30, 1: 10})
    defaults = dict(
        configuration="THP",
        workload="toy",
        accesses=100,
        instructions=300,
        l1_misses=10,
        l2_misses=2,
        page_walks=2,
        page_walk_refs=5,
        range_walk_refs=0,
        energy=EnergyBreakdown(),
        cycles=miss_cycles(10, 2, 300),
        structure_stats={"L1-4KB": stats_4kb},
        hit_attribution={"L1-4KB": 70, "L1-2MB": 20},
        timeline=[TimelineSample(100, 5.0), TimelineSample(200, 2.5)],
    )
    defaults.update(overrides)
    return SimulationResult(**defaults)


class TestDerivedMetrics:
    def test_mpki(self):
        result = make_result()
        assert result.l1_mpki == pytest.approx(10 * 1000 / 300)
        assert result.l2_mpki == pytest.approx(2 * 1000 / 300)

    def test_miss_cycles(self):
        assert make_result().miss_cycles == 10 * 7 + 2 * 50

    def test_energy_per_access_with_zero_accesses(self):
        result = make_result(accesses=0)
        assert result.energy_per_access_pj == 0.0

    def test_way_lookup_shares_ordering_and_values(self):
        shares = make_result().way_lookup_shares("L1-4KB")
        assert list(shares) == [4, 2, 1]  # descending ways
        assert shares[4] == pytest.approx(0.6)
        assert shares[1] == pytest.approx(0.1)

    def test_way_lookup_shares_empty(self):
        result = make_result(structure_stats={"L1-4KB": TLBStats()})
        assert result.way_lookup_shares("L1-4KB") == {}

    def test_hit_shares(self):
        shares = make_result().hit_shares()
        assert shares["L1-4KB"] == pytest.approx(70 / 90)
        assert sum(shares.values()) == pytest.approx(1.0)

    def test_hit_shares_no_hits(self):
        result = make_result(hit_attribution={"L1-4KB": 0})
        assert result.hit_shares() == {"L1-4KB": 0.0}

    def test_summary_line(self):
        line = make_result().summary_line()
        assert "THP" in line and "toy" in line and "pJ/access" in line


class TestTLBStats:
    def test_hit_ratio(self):
        stats = TLBStats()
        assert stats.hit_ratio == 0.0
        stats.hits, stats.misses = 3, 1
        assert stats.hit_ratio == 0.75
        assert stats.lookups == 4

    def test_reset(self):
        stats = TLBStats()
        stats.hits = 5
        stats.lookups_by_ways[4] = 5
        stats.fills_by_ways[4] = 2
        stats.reset()
        assert stats.hits == 0
        assert stats.lookups == 0
        assert stats.fills == 0

    def test_snapshot_independent(self):
        stats = TLBStats()
        stats.hits = 1
        stats.lookups_by_ways[4] = 1
        snapshot = stats.snapshot()
        stats.hits = 9
        stats.lookups_by_ways[4] = 9
        assert snapshot.hits == 1
        assert snapshot.lookups_by_ways == {4: 1}
