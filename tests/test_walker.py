"""Unit tests for the page walker: reference counts with MMU-cache help."""

import pytest

from repro.mmu.page_table import PageFault, PageTable
from repro.mmu.translation import PAGES_PER_2MB, PageSize, Translation
from repro.mmu.walker import PageWalker


def make_walker():
    pt = PageTable()
    pt.map(Translation(0, 1000, PageSize.SIZE_4KB))
    pt.map(Translation(1, 1001, PageSize.SIZE_4KB))
    pt.map(Translation(PAGES_PER_2MB, 2048, PageSize.SIZE_2MB))
    big = PageSize.SIZE_1GB
    pt.map(Translation(int(big), 0, big))
    return PageWalker(pt)


class TestWalkRefs:
    def test_cold_4kb_walk_costs_four_refs(self):
        walker = make_walker()
        result = walker.walk(0)
        assert result.memory_refs == 4
        assert result.levels_skipped == 0
        assert result.translation.pfn == 1000

    def test_warm_4kb_walk_costs_one_ref(self):
        walker = make_walker()
        walker.walk(0)  # fills PDE cache
        result = walker.walk(1)
        assert result.memory_refs == 1
        assert result.levels_skipped == 3

    def test_cold_2mb_walk_costs_three_refs(self):
        walker = make_walker()
        result = walker.walk(PAGES_PER_2MB + 5)
        assert result.memory_refs == 3
        assert result.translation.page_size is PageSize.SIZE_2MB

    def test_warm_2mb_walk_costs_one_ref(self):
        walker = make_walker()
        walker.walk(PAGES_PER_2MB)  # fills PDPTE+PML4
        assert walker.walk(PAGES_PER_2MB + 1).memory_refs == 1

    def test_cold_1gb_walk_costs_two_refs(self):
        walker = make_walker()
        big = int(PageSize.SIZE_1GB)
        assert walker.walk(big).memory_refs == 2

    def test_warm_1gb_walk_costs_one_ref(self):
        walker = make_walker()
        big = int(PageSize.SIZE_1GB)
        walker.walk(big)
        assert walker.walk(big + 777).memory_refs == 1

    def test_4kb_after_2mb_in_same_pdpt_costs_two(self):
        walker = make_walker()
        walker.walk(PAGES_PER_2MB)  # 2MB walk fills PDPTE
        # vpn 0 shares the PDPTE but its PDE is not cached yet.
        assert walker.walk(0).memory_refs == 2

    def test_page_fault_propagates(self):
        walker = make_walker()
        with pytest.raises(PageFault):
            walker.walk(999_999_999)


class TestWalkerStats:
    def test_counts_accumulate(self):
        walker = make_walker()
        walker.walk(0)
        walker.walk(1)
        assert walker.stats.walks == 2
        assert walker.stats.memory_refs == 5  # 4 + 1

    def test_reset(self):
        walker = make_walker()
        walker.walk(0)
        walker.stats.reset()
        assert walker.stats.walks == 0
        assert walker.stats.memory_refs == 0

    def test_snapshot_is_independent(self):
        walker = make_walker()
        walker.walk(0)
        snap = walker.stats.snapshot()
        walker.walk(1)
        assert snap.walks == 1
        assert walker.stats.walks == 2

    def test_refs_always_at_least_one(self):
        walker = make_walker()
        for _ in range(5):
            result = walker.walk(0)
            assert result.memory_refs >= 1
