"""Tests for the robustness subsystem: errors, faults, auditor, sweeps.

Covers the acceptance bar of the resilience work: fault-injection
campaigns finish without unhandled exceptions (with flagged stats), a
sweep killed mid-matrix resumes to byte-identical rows, and a corrupted
counter is caught by the invariant auditor.
"""

import json

import numpy as np
import pytest

from repro.analysis.experiments import (
    ExperimentSettings,
    prepare_run,
    run_workload_config,
    run_workload_config_with_org,
)
from repro.core.organizations import build_organization, paging_policy_for
from repro.core.simulator import Simulator
from repro.errors import (
    InvariantViolation,
    SettingsError,
    SweepError,
    TraceError,
    TraceIOError,
    UnknownConfigError,
    UnknownWorkloadError,
    did_you_mean,
)
from repro.mmu.page_table import PageFault, PageTable, VPN_LIMIT
from repro.mmu.translation import PageSize, Translation
from repro.resilience import (
    InvariantAuditor,
    adversarial_events,
    inject_duplicate_bursts,
    inject_negative_vpns,
    inject_out_of_range,
    run_fault_campaign,
    run_resilient_sweep,
    truncate_trace,
)
from repro.resilience.sweep import SweepJournal
from repro.workloads.registry import get_workload

SETTINGS = ExperimentSettings(trace_accesses=6_000, seed=5)


# ----------------------------------------------------------------------
# Error taxonomy + settings validation
# ----------------------------------------------------------------------
class TestErrorTaxonomy:
    def test_did_you_mean(self):
        assert did_you_mean("mfc", ["mcf", "omnetpp"]) == ["mcf"]
        assert did_you_mean("zzzz", ["mcf"]) == []

    def test_unknown_workload_is_keyerror_with_suggestions(self):
        with pytest.raises(KeyError) as excinfo:
            get_workload("povwray")
        assert isinstance(excinfo.value, UnknownWorkloadError)
        assert "povray" in str(excinfo.value)
        assert "did you mean" in str(excinfo.value)

    def test_unknown_config_is_keyerror(self):
        with pytest.raises(KeyError) as excinfo:
            paging_policy_for("THPP")
        assert isinstance(excinfo.value, UnknownConfigError)
        assert "THP" in str(excinfo.value)

    def test_settings_validation(self):
        with pytest.raises(SettingsError):
            ExperimentSettings(trace_accesses=0)
        with pytest.raises(SettingsError):
            ExperimentSettings(trace_accesses=-5)
        with pytest.raises(SettingsError):
            ExperimentSettings(physical_bytes=0)
        with pytest.raises(SettingsError):
            ExperimentSettings(thp_coverage=float("nan"))
        with pytest.raises(SettingsError):
            ExperimentSettings(thp_coverage=1.5)
        with pytest.raises(SettingsError):
            ExperimentSettings(thp_coverage=float("inf"))
        assert ExperimentSettings(thp_coverage=0.0).thp_coverage == 0.0


# ----------------------------------------------------------------------
# Page-table bounds (regression found by fault injection)
# ----------------------------------------------------------------------
class TestPageTableBounds:
    def test_out_of_range_vpn_faults_instead_of_aliasing(self):
        table = PageTable()
        table.map(Translation(0x100, 0x1, PageSize.SIZE_4KB))
        # Beyond the 36-bit page-number space: must miss, not wrap to 0x100.
        assert table.lookup(VPN_LIMIT + 0x100) is None
        assert table.lookup(-1) is None
        with pytest.raises(PageFault):
            table.walk(VPN_LIMIT + 0x100)

    def test_out_of_range_map_rejected(self):
        table = PageTable()
        with pytest.raises(ValueError):
            table.map(Translation(VPN_LIMIT, 0x1, PageSize.SIZE_4KB))


# ----------------------------------------------------------------------
# Trace perturbations + fault-tolerant simulation
# ----------------------------------------------------------------------
class TestTracePerturbations:
    def test_perturbations_shapes(self):
        trace = np.arange(1_000, dtype=np.int64)
        oor = inject_out_of_range(trace, fraction=0.05, seed=1)
        assert (oor >= VPN_LIMIT).sum() >= 1
        neg = inject_negative_vpns(trace, fraction=0.05, seed=1)
        assert (neg < 0).sum() >= 1
        assert len(truncate_trace(trace, keep_fraction=0.25)) == 250
        burst = inject_duplicate_bursts(trace, bursts=2, burst_length=64, seed=1)
        assert len(burst) == len(trace)
        # The original trace is never mutated in place.
        assert np.array_equal(trace, np.arange(1_000, dtype=np.int64))

    def test_simulator_records_faults_instead_of_crashing(self):
        workload = get_workload("povray")
        prepared = prepare_run(workload, "THP", SETTINGS, on_fault="record")
        prepared.trace = inject_negative_vpns(prepared.trace, fraction=0.02, seed=3)
        result = prepared.run()
        assert result.degraded
        assert result.faulted_accesses > 0
        assert result.fault_records
        assert result.fault_records[0].error == "PageFault"

    def test_strict_mode_still_raises(self):
        workload = get_workload("povray")
        prepared = prepare_run(workload, "THP", SETTINGS, on_fault="raise")
        prepared.trace = inject_negative_vpns(prepared.trace, fraction=0.02, seed=3)
        with pytest.raises(PageFault):
            prepared.run()

    def test_clean_run_is_not_degraded(self):
        result = run_workload_config(
            get_workload("povray"), "THP", SETTINGS, on_fault="record"
        )
        assert not result.degraded
        assert result.fault_records == []


class TestFaultCampaigns:
    @pytest.mark.parametrize("workload_name", ["povray", "swaptions"])
    def test_campaign_survives_with_flagged_stats(self, workload_name):
        """The acceptance bar: no unhandled exceptions, degradation flagged."""
        report = run_fault_campaign(
            get_workload(workload_name),
            ("THP", "TLB_Lite", "RMM_Lite"),
            SETTINGS,
            audit=True,
        )
        assert report.survived
        assert not [c for c in report.cells if c.error_type and
                    c.error_type.startswith("unhandled:")]
        degraded = [cell for cell in report.cells if cell.ok and cell.degraded]
        assert degraded, "out-of-range/negative faults must be flagged"
        by_fault = {cell.fault for cell in report.cells}
        assert by_fault == {
            "out_of_range", "negative", "truncate", "duplicate_burst", "os_events",
        }

    def test_adversarial_events_run_under_audit(self):
        workload = get_workload("povray")
        auditor = InvariantAuditor()
        prepared = prepare_run(
            workload, "TLB_Lite", SETTINGS, auditor=auditor, on_fault="record"
        )
        events = adversarial_events(
            prepared.process, len(prepared.trace), shootdowns=4,
            demotion_storms=2, seed=9,
        )
        result = prepared.run(events=events)
        assert result.accesses > 0
        assert auditor.checks_run > 0
        assert not auditor.violations


# ----------------------------------------------------------------------
# Invariant auditor
# ----------------------------------------------------------------------
class TestAuditor:
    def test_clean_run_passes_all_checks(self):
        auditor = InvariantAuditor()
        run_workload_config(
            get_workload("povray"), "RMM_Lite", SETTINGS, auditor=auditor
        )
        assert auditor.checks_run > 100
        assert not auditor.violations

    def test_corrupted_counter_is_caught(self):
        """A deliberately corrupted stats counter raises InvariantViolation."""
        result = run_workload_config(get_workload("povray"), "THP", SETTINGS)
        result.l1_misses += 100  # silent corruption
        with pytest.raises(InvariantViolation) as excinfo:
            InvariantAuditor().audit_result(result)
        assert excinfo.value.invariant == "hit-attribution"
        assert excinfo.value.context["l1_misses"] == result.l1_misses

    def test_corrupted_energy_component_is_caught(self):
        result, organization = run_workload_config_with_org(
            get_workload("povray"), "THP", SETTINGS
        )
        result.energy.by_structure["L1-4KB"] *= 2  # desync structure vs component
        with pytest.raises(InvariantViolation) as excinfo:
            InvariantAuditor().audit_result(result)
        assert excinfo.value.invariant.startswith("energy")

    def test_corrupted_live_hierarchy_is_caught(self):
        workload = get_workload("povray")
        prepared = prepare_run(workload, "TLB_Lite", SETTINGS)
        prepared.run()
        hierarchy = prepared.organization.hierarchy
        hierarchy.l2_misses = hierarchy.l1_misses + 7  # impossible ordering
        with pytest.raises(InvariantViolation):
            InvariantAuditor().audit_hierarchy(hierarchy, prepared.organization.lite)

    def test_lite_out_of_range_is_caught(self):
        workload = get_workload("povray")
        prepared = prepare_run(workload, "TLB_Lite", SETTINGS)
        prepared.run()
        lite = prepared.organization.lite
        lite.units[0].tlb.active_ways = 3  # not a power of two
        with pytest.raises(InvariantViolation):
            InvariantAuditor().audit_lite(lite)

    def test_collecting_mode_records_instead_of_raising(self):
        result = run_workload_config(get_workload("povray"), "THP", SETTINGS)
        result.l1_misses += 1
        auditor = InvariantAuditor(raise_on_violation=False)
        auditor.audit_result(result)
        assert auditor.violations
        assert all(isinstance(v, InvariantViolation) for v in auditor.violations)


# ----------------------------------------------------------------------
# Resilient sweep runner
# ----------------------------------------------------------------------
class TestResilientSweep:
    CONFIGS = ("4KB", "THP", "TLB_Lite", "RMM_Lite")

    def test_kill_and_resume_matches_uninterrupted(self, tmp_path):
        """Journal resume reproduces an uninterrupted sweep byte for byte."""
        workload = get_workload("povray")
        full = run_resilient_sweep(
            [workload], self.CONFIGS, SETTINGS,
            journal_path=tmp_path / "full.jsonl",
        )
        assert full.completed_count == len(self.CONFIGS)

        journal = tmp_path / "killed.jsonl"
        partial = run_resilient_sweep(
            [workload], self.CONFIGS, SETTINGS,
            journal_path=journal, max_cells=2,
        )
        assert partial.interrupted
        assert partial.completed_count == 2
        assert {c.status for c in partial.cells} == {"ok", "skipped"}

        resumed = run_resilient_sweep(
            [workload], self.CONFIGS, SETTINGS,
            journal_path=journal, resume=True,
        )
        statuses = [cell.status for cell in resumed.cells]
        assert statuses == ["resumed", "resumed", "ok", "ok"]
        full_bytes = json.dumps(full.rows(), sort_keys=True)
        resumed_bytes = json.dumps(resumed.rows(), sort_keys=True)
        assert full_bytes == resumed_bytes

    def test_journal_fingerprint_mismatch_rejected(self, tmp_path):
        workload = get_workload("povray")
        journal = tmp_path / "j.jsonl"
        run_resilient_sweep(
            [workload], ("4KB",), SETTINGS, journal_path=journal, max_cells=1
        )
        other = ExperimentSettings(trace_accesses=6_000, seed=6)
        with pytest.raises(SweepError):
            run_resilient_sweep(
                [workload], ("4KB",), other, journal_path=journal, resume=True
            )

    def test_torn_journal_line_is_tolerated(self, tmp_path):
        workload = get_workload("povray")
        journal = tmp_path / "torn.jsonl"
        run_resilient_sweep(
            [workload], ("4KB", "THP"), SETTINGS, journal_path=journal, max_cells=1
        )
        with open(journal, "a") as handle:
            handle.write('{"key": "povray|THP", "row": {"trunc')  # mid-write kill
        with pytest.warns(UserWarning, match="truncated or corrupt"):
            resumed = run_resilient_sweep(
                [workload], ("4KB", "THP"), SETTINGS, journal_path=journal, resume=True
            )
        assert [cell.status for cell in resumed.cells] == ["resumed", "ok"]

    def test_failing_cell_is_isolated_and_reported(self):
        workload = get_workload("povray")
        report = run_resilient_sweep(
            [workload], ("4KB", "NoSuchConfig", "THP"), SETTINGS,
            retries=1, backoff_s=0.0,
        )
        statuses = {cell.configuration: cell.status for cell in report.cells}
        assert statuses == {"4KB": "ok", "NoSuchConfig": "failed", "THP": "ok"}
        failed = report.cell("povray", "NoSuchConfig")
        assert failed.attempts == 2  # retried once with backoff
        assert "UnknownConfigError" in failed.error
        assert report.summary() == "failed: 1, ok: 2"

    def test_cell_timeout_is_marked(self):
        workload = get_workload("povray")
        slow = ExperimentSettings(trace_accesses=200_000, seed=5)
        report = run_resilient_sweep(
            [workload], ("THP",), slow, cell_timeout_s=1e-3,
        )
        cell = report.cell("povray", "THP")
        assert cell.status == "timeout"
        assert cell.attempts == 1  # timeouts are not retried

    def test_audited_sweep_matches_unaudited(self):
        workload = get_workload("povray")
        plain = run_resilient_sweep([workload], ("THP",), SETTINGS)
        audited = run_resilient_sweep([workload], ("THP",), SETTINGS, audit=True)
        assert plain.rows() == audited.rows()


# ----------------------------------------------------------------------
# CLI wiring
# ----------------------------------------------------------------------
class TestResilienceCLI:
    def test_sweep_journal_and_resume(self, tmp_path, capsys, monkeypatch):
        from repro.__main__ import main

        journal = tmp_path / "cli.jsonl"
        assert main([
            "sweep", "povray", "--accesses", "5000",
            "--journal", str(journal),
        ]) == 0
        capsys.readouterr()
        assert journal.exists()
        assert main([
            "sweep", "povray", "--accesses", "5000",
            "--journal", str(journal), "--resume",
        ]) == 0
        out = capsys.readouterr().out
        assert "resumed" in out
        assert "energy vs 4KB" in out

    def test_audit_subcommand(self, capsys):
        from repro.__main__ import main

        assert main(["audit", "povray", "--accesses", "5000",
                     "--configs", "THP", "RMM_Lite"]) == 0
        out = capsys.readouterr().out
        assert "invariant checks" in out

    def test_run_audit_flag(self, capsys):
        from repro.__main__ import main

        assert main(["run", "povray", "--accesses", "5000", "--audit"]) == 0
        out = capsys.readouterr().out
        assert "auditor:" in out
