"""Tests for the workload models and registry."""

import numpy as np
import pytest

from repro.mem.paging import DemandPaging, EagerPaging, TransparentHugePaging
from repro.mem.physical import PhysicalMemory
from repro.workloads.base import PAGES_PER_MB, VMASpec, Workload
from repro.workloads.patterns import Region, UniformRandom
from repro.workloads.registry import (
    all_workloads,
    get_workload,
    other_workloads,
    tlb_intensive_workloads,
)
from repro.workloads.secondary import LightProfile, build_light_workload


def toy_workload():
    return Workload(
        "toy",
        "TEST",
        [VMASpec("heap", 4), VMASpec("stack", 1, thp_eligible=False)],
        lambda regions: UniformRandom(regions["heap"], burst=2),
        instructions_per_access=2.0,
    )


class TestWorkloadMechanics:
    def test_footprint(self):
        assert toy_workload().footprint_mb == 5

    def test_regions_deterministic(self):
        w = toy_workload()
        assert w.regions() == w.regions()

    def test_trace_within_declared_regions(self):
        w = toy_workload()
        trace = w.trace(5000, seed=1)
        heap = w.regions()["heap"]
        assert np.all((trace >= heap.start_vpn) & (trace < heap.end_vpn))

    def test_trace_deterministic_per_seed(self):
        w = toy_workload()
        assert np.array_equal(w.trace(1000, seed=3), w.trace(1000, seed=3))
        assert not np.array_equal(w.trace(1000, seed=3), w.trace(1000, seed=4))

    def test_process_layout_matches_regions_for_every_policy(self):
        w = toy_workload()
        regions = w.regions()
        for policy in (DemandPaging(), TransparentHugePaging(), EagerPaging("4kb")):
            process = w.build_process(policy, PhysicalMemory(1 << 28, seed=1))
            for vma in process.address_space:
                region = regions[vma.name]
                assert (vma.start_vpn, vma.num_pages) == (
                    region.start_vpn,
                    region.num_pages,
                )

    def test_trace_translatable_under_every_policy(self):
        w = toy_workload()
        trace = w.trace(200, seed=0)
        for policy in (DemandPaging(), TransparentHugePaging(), EagerPaging("thp")):
            process = w.build_process(policy, PhysicalMemory(1 << 28, seed=1))
            for vpn in trace[:50]:
                process.translate(int(vpn))

    def test_thp_eligibility_respected(self):
        w = toy_workload()
        process = w.build_process(TransparentHugePaging(), PhysicalMemory(1 << 28))
        stack = next(v for v in process.address_space if v.name == "stack")
        assert not stack.thp_eligible

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            Workload("x", "s", [], lambda regions: None)
        with pytest.raises(ValueError):
            toy_workload().trace(0)


class TestRegistry:
    def test_eight_tlb_intensive_workloads(self):
        names = [w.name for w in tlb_intensive_workloads()]
        assert names == [
            "astar",
            "cactusADM",
            "GemsFDTD",
            "mcf",
            "omnetpp",
            "zeusmp",
            "mummer",
            "canneal",
        ]

    def test_footprints_match_table4(self):
        """Table 4 memory footprints, within a few percent."""
        expected_mb = {
            "astar": 350,
            "cactusADM": 690,
            "GemsFDTD": 860,
            "mcf": 1700,
            "omnetpp": 165,
            "zeusmp": 530,
            "canneal": 780,
            "mummer": 470,
        }
        for name, expected in expected_mb.items():
            actual = get_workload(name).footprint_mb
            assert abs(actual - expected) / expected < 0.05, name

    def test_unknown_name_raises_with_suggestions(self):
        with pytest.raises(KeyError) as excinfo:
            get_workload("does-not-exist")
        assert "mcf" in str(excinfo.value)

    def test_other_workloads_by_suite(self):
        spec = other_workloads("SPEC 2006")
        parsec = other_workloads("PARSEC")
        assert len(spec) >= 15
        assert len(parsec) >= 8
        assert all(not w.tlb_intensive for w in spec + parsec)

    def test_registry_names_unique_and_cached(self):
        first = all_workloads()
        assert len(first) >= 30
        assert all_workloads() is first

    def test_all_workload_traces_stay_in_bounds(self):
        for workload in all_workloads().values():
            regions = workload.regions()
            low = min(r.start_vpn for r in regions.values())
            high = max(r.end_vpn for r in regions.values())
            trace = workload.trace(2000, seed=7)
            assert len(trace) == 2000
            assert trace.min() >= low
            assert trace.max() < high, workload.name


class TestLightTemplate:
    def test_build_light_workload(self):
        profile = LightProfile("demo", "SPEC 2006", 64, stream_share=0.3)
        workload = build_light_workload(profile)
        assert workload.footprint_mb == pytest.approx(64)
        trace = workload.trace(3000, seed=2)
        assert len(trace) == 3000

    def test_light_workloads_are_less_intensive(self):
        """The template produces lower 4KB-page L1 MPKI than e.g. mcf."""
        from repro.analysis.experiments import ExperimentSettings, run_workload_config

        settings = ExperimentSettings(trace_accesses=40_000)
        light = run_workload_config(get_workload("povray"), "4KB", settings)
        heavy = run_workload_config(get_workload("mcf"), "4KB", settings)
        assert light.l1_mpki < heavy.l1_mpki
