"""Tests for the checkpoint protocol, snapshots, and divergence bisection.

The acceptance bar of the checkpoint work:

* every TLB organization round-trips through ``state_dict`` /
  ``load_state_dict`` mid-run — a snapshot taken at a boundary restores
  onto a freshly built pipeline to the exact same state;
* a run killed mid-cell and resumed from its snapshot finishes with a
  byte-identical result (and identical per-boundary state digests);
* a sweep killed mid-cell resumes mid-trace and produces byte-identical
  rows to an uninterrupted sweep;
* snapshot files reject version and checksum mismatches;
* ``bisect-divergence`` pinpoints the first diverging interval boundary
  and the diverging component on a seeded fault-injected run.
"""

import json

import pytest

from repro.analysis.experiments import ExperimentSettings, prepare_run
from repro.core.organizations import EXTENDED_CONFIG_NAMES
from repro.errors import CheckpointError
from repro.ioutils import atomic_write_json, atomic_write_text
from repro.resilience.bisect import (
    bisect_divergence,
    describe_divergence,
    record_digest_trail,
    record_resumed_trail,
)
from repro.resilience.checkpoint import (
    CHECKPOINT_VERSION,
    AbortSimulation,
    DigestTrail,
    SimulationCheckpointer,
    component_digests,
    first_divergence,
    read_snapshot,
    resume_from_snapshot,
    simulation_state,
    state_digest,
    write_snapshot,
)
from repro.resilience.sweep import run_resilient_sweep
from repro.workloads.base import VMASpec, Workload
from repro.workloads.patterns import Zipf

SETTINGS = ExperimentSettings(trace_accesses=6_000, seed=5, physical_bytes=1 << 28)


def small_workload(name: str = "ckpt") -> Workload:
    return Workload(
        name,
        "TEST",
        [VMASpec("heap", 6), VMASpec("stack", 1, thp_eligible=False)],
        lambda regions: Zipf(regions["heap"].subregion(0, 24), alpha=1.1, burst=3),
        instructions_per_access=3.0,
    )


def killed_snapshot(workload, config_name, path, abort_after=3, **prepare_kwargs):
    """Run a cell until ``abort_after`` boundaries, leaving a snapshot."""
    prepared = prepare_run(workload, config_name, SETTINGS, **prepare_kwargs)
    checkpointer = SimulationCheckpointer(
        prepared.simulator,
        prepared.process,
        path=path,
        checkpoint_every=1,
        abort_after=abort_after,
    )
    with pytest.raises(AbortSimulation):
        prepared.run(checkpoint_hook=checkpointer)
    return checkpointer


# ----------------------------------------------------------------------
# State round-trips: every organization, mid-run
# ----------------------------------------------------------------------
class TestStateRoundTrip:
    @pytest.mark.parametrize("config_name", EXTENDED_CONFIG_NAMES)
    def test_midrun_snapshot_restores_exactly(self, config_name, tmp_path):
        """Snapshot at boundary 3 → restore on a fresh pipeline → equal state."""
        workload = small_workload()
        path = tmp_path / "cell.ckpt"
        killed_snapshot(workload, config_name, path)
        saved_state, meta = read_snapshot(path)

        rebuilt = prepare_run(workload, config_name, SETTINGS)
        loop_state = resume_from_snapshot(rebuilt, path)
        restored_state = simulation_state(
            rebuilt.simulator, rebuilt.process, loop_state
        )
        assert restored_state == saved_state
        assert component_digests(restored_state) == component_digests(saved_state)

    def test_lite_history_round_trips(self, tmp_path):
        workload = small_workload()
        path = tmp_path / "cell.ckpt"
        # The first Lite interval ends around boundary 32 at these settings;
        # kill at 35 so the snapshot carries at least one history record.
        killed_snapshot(workload, "TLB_Lite", path, abort_after=35, record_history=True)
        saved_state, _ = read_snapshot(path)
        assert saved_state["lite"]["history"], "no Lite intervals before the kill"

        rebuilt = prepare_run(workload, "TLB_Lite", SETTINGS, record_history=True)
        loop_state = resume_from_snapshot(rebuilt, path)
        assert rebuilt.organization.lite.state_dict() == saved_state["lite"]
        records = rebuilt.organization.lite.history
        assert records and records[-1].instructions_seen > 0

    def test_lite_mismatch_rejected(self, tmp_path):
        """A Lite snapshot cannot restore onto a Lite-less organization."""
        workload = small_workload()
        path = tmp_path / "cell.ckpt"
        killed_snapshot(workload, "TLB_Lite", path)
        rebuilt = prepare_run(workload, "THP", SETTINGS)
        with pytest.raises(CheckpointError):
            resume_from_snapshot(rebuilt, path)


# ----------------------------------------------------------------------
# Kill-and-resume determinism
# ----------------------------------------------------------------------
class TestResumeDeterminism:
    @pytest.mark.parametrize(
        "config_name", ("4KB", "TLB_Lite", "RMM_Lite", "FA_Lite", "Banked")
    )
    def test_resumed_run_is_byte_identical(self, config_name, tmp_path):
        workload = small_workload()
        fresh = record_digest_trail(workload, config_name, SETTINGS)
        resumed = record_resumed_trail(
            workload,
            config_name,
            SETTINGS,
            abort_after=4,
            snapshot_path=tmp_path / "cell.ckpt",
        )
        assert bisect_divergence(fresh.trail, resumed.trail) is None
        assert resumed.result == fresh.result

    def test_sweep_killed_mid_cell_resumes_byte_identical(self, tmp_path):
        """The tentpole scenario: kill every cell mid-trace, resume, compare."""
        workload = small_workload()
        configs = ("4KB", "THP", "TLB_Lite")
        reference = run_resilient_sweep(
            [workload], configs, SETTINGS,
            journal_path=tmp_path / "ref.journal", checkpoint_every=1,
        )
        assert reference.summary() == "ok: 3"

        journal = tmp_path / "sweep.journal"
        killed = run_resilient_sweep(
            [workload], configs, SETTINGS,
            journal_path=journal, retries=0, checkpoint_every=1,
            checkpoint_hook_factory=lambda cp: setattr(cp, "abort_after", 4),
        )
        assert all(cell.status == "failed" for cell in killed.cells)
        snapshots = list(tmp_path.glob("sweep.journal.*.ckpt"))
        assert len(snapshots) == len(configs)

        resumed = run_resilient_sweep(
            [workload], configs, SETTINGS,
            journal_path=journal, resume=True, checkpoint_every=1,
        )
        assert resumed.summary() == "ok: 3"
        assert resumed.rows() == reference.rows()
        # Completed cells delete their resume points.
        assert list(tmp_path.glob("sweep.journal.*.ckpt")) == []

    def test_resume_state_rejects_different_trace(self, tmp_path):
        workload = small_workload()
        path = tmp_path / "cell.ckpt"
        killed_snapshot(workload, "THP", path)
        other_settings = ExperimentSettings(
            trace_accesses=4_000, seed=5, physical_bytes=1 << 28
        )
        rebuilt = prepare_run(workload, "THP", other_settings)
        loop_state = resume_from_snapshot(rebuilt, path)
        with pytest.raises(CheckpointError):
            rebuilt.run(resume_state=loop_state)


# ----------------------------------------------------------------------
# Snapshot file integrity
# ----------------------------------------------------------------------
class TestSnapshotFiles:
    def test_round_trip_with_meta(self, tmp_path):
        path = tmp_path / "snap.ckpt"
        state = {"hierarchy": {"l1_misses": 3}, "loop": {"boundary": 7}}
        write_snapshot(path, state, meta={"cell": "w|c"})
        loaded, meta = read_snapshot(path)
        assert loaded == state
        assert meta == {"cell": "w|c"}

    def test_version_mismatch_rejected(self, tmp_path):
        path = tmp_path / "snap.ckpt"
        write_snapshot(path, {"loop": {}})
        envelope = json.loads(path.read_text())
        envelope["checkpoint_version"] = CHECKPOINT_VERSION + 1
        path.write_text(json.dumps(envelope))
        with pytest.raises(CheckpointError, match="version"):
            read_snapshot(path)

    def test_checksum_mismatch_rejected(self, tmp_path):
        path = tmp_path / "snap.ckpt"
        write_snapshot(path, {"loop": {"boundary": 1}})
        envelope = json.loads(path.read_text())
        envelope["payload"]["loop"]["boundary"] = 2  # corrupt the payload
        path.write_text(json.dumps(envelope))
        with pytest.raises(CheckpointError, match="checksum"):
            read_snapshot(path)

    def test_garbage_and_missing_rejected(self, tmp_path):
        garbage = tmp_path / "garbage.ckpt"
        garbage.write_text('{"checkpoint_version": 1, "truncat')
        with pytest.raises(CheckpointError):
            read_snapshot(garbage)
        with pytest.raises(CheckpointError):
            read_snapshot(tmp_path / "missing.ckpt")

    def test_atomic_writers_leave_no_temp_files(self, tmp_path):
        target = tmp_path / "out.json"
        atomic_write_text(target, "first\n")
        atomic_write_json(target, {"b": 2, "a": 1})
        assert json.loads(target.read_text()) == {"a": 1, "b": 2}
        assert [p.name for p in tmp_path.iterdir()] == ["out.json"]


# ----------------------------------------------------------------------
# Digest trails and bisection
# ----------------------------------------------------------------------
def trail_from(digest_lists) -> DigestTrail:
    trail = DigestTrail()
    for boundary, digest_map in enumerate(digest_lists, start=1):
        trail.record(boundary, digest_map)
    return trail


class TestBisection:
    def test_identical_trails_have_no_divergence(self):
        maps = [{"a": "1"}, {"a": "2"}, {"a": "3"}]
        assert first_divergence(trail_from(maps), trail_from(maps)) is None

    @pytest.mark.parametrize("diverge_at", range(6))
    def test_binary_search_finds_first_difference(self, diverge_at):
        base = [{"x": str(i), "y": "same"} for i in range(6)]
        other = [dict(digest_map) for digest_map in base]
        for index in range(diverge_at, 6):
            other[index]["x"] = f"{index}-diverged"
        divergence = first_divergence(trail_from(base), trail_from(other))
        assert divergence.index == diverge_at
        assert divergence.boundary == diverge_at + 1
        assert divergence.components == ("x",)

    def test_mismatched_trails_rejected(self):
        with pytest.raises(CheckpointError):
            first_divergence(trail_from([{"a": "1"}]), trail_from([]))

    def test_trail_json_round_trip(self):
        trail = trail_from([{"a": "1"}, {"a": "2"}])
        assert DigestTrail.from_json(trail.to_json()).boundaries == trail.boundaries

    def test_state_digest_is_order_insensitive(self):
        assert state_digest({"a": 1, "b": 2}) == state_digest({"b": 2, "a": 1})
        assert state_digest({"a": 1}) != state_digest({"a": 2})

    def test_fault_injected_run_pinpoints_component(self):
        """Seeded trace fault → first diverging boundary + component named."""
        workload = small_workload()
        clean = record_digest_trail(workload, "4KB", SETTINGS)
        faulty = record_digest_trail(
            workload, "4KB", SETTINGS, trace_fault="duplicate_burst", fault_seed=7
        )
        divergence = bisect_divergence(clean.trail, faulty.trail)
        assert divergence is not None
        assert divergence.boundary > 1  # the burst lands mid-trace
        assert divergence.components == ("hierarchy.structures.L1-4KB",)
        assert "L1-4KB" in describe_divergence(divergence)

    def test_out_of_range_fault_diverges_hierarchy_and_loop(self):
        workload = small_workload()
        clean = record_digest_trail(workload, "TLB_Lite", SETTINGS)
        faulty = record_digest_trail(
            workload, "TLB_Lite", SETTINGS, trace_fault="out_of_range", fault_seed=7
        )
        divergence = bisect_divergence(clean.trail, faulty.trail)
        assert divergence is not None
        assert "loop" in divergence.components  # recorded fault entries
        assert any(c.startswith("hierarchy.") for c in divergence.components)


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
class TestCLI:
    def test_bisect_divergence_exit_codes(self, capsys):
        from repro.__main__ import main

        assert (
            main(
                ["bisect-divergence", "povray", "--config", "TLB_Lite",
                 "--accesses", "6000", "--abort-after", "3"]
            )
            == 0
        )
        assert "no divergence" in capsys.readouterr().out
        assert (
            main(
                ["bisect-divergence", "povray", "--config", "4KB",
                 "--accesses", "6000", "--fault", "out_of_range"]
            )
            == 1
        )
        assert "first divergence at boundary" in capsys.readouterr().out

    def test_sweep_checkpoint_every_requires_journal(self, capsys):
        from repro.__main__ import main

        code = main(["sweep", "povray", "--accesses", "6000", "--checkpoint-every", "2"])
        assert code == 2
        assert "journal" in capsys.readouterr().err
