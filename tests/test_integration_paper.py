"""Integration tests asserting the paper's headline shapes end-to-end.

These run scaled-down versions of the Figure 10 pipeline over real
workload models and check the *qualitative* results the paper reports:
who wins, in which direction, and by roughly what kind of factor.  The
benchmark harness regenerates the full-size numbers.
"""

import pytest

from repro.analysis.experiments import ExperimentSettings, run_matrix
from repro.core.organizations import CONFIG_NAMES
from repro.workloads.registry import get_workload

SETTINGS = ExperimentSettings(trace_accesses=120_000)
WORKLOADS = ("mcf", "omnetpp", "cactusADM", "canneal")


@pytest.fixture(scope="module")
def results():
    return run_matrix([get_workload(name) for name in WORKLOADS], CONFIG_NAMES, SETTINGS)


def energy(results, workload, config):
    return results[(workload, config)].total_energy_pj


class TestTHPShapes:
    def test_thp_slashes_miss_cycles(self, results):
        """THP cuts TLB-miss cycles heavily vs 4KB (paper: -83% average)."""
        for workload in ("mcf", "omnetpp", "cactusADM"):
            assert (
                results[(workload, "THP")].miss_cycles
                < 0.7 * results[(workload, "4KB")].miss_cycles
            )

    def test_thp_decreases_energy_only_for_walk_bound_workloads(self, results):
        """Paper Section 3.3: energy drops for cactusADM/mcf, rises for canneal."""
        assert energy(results, "cactusADM", "THP") < energy(results, "cactusADM", "4KB")
        assert energy(results, "mcf", "THP") < energy(results, "mcf", "4KB")
        assert energy(results, "canneal", "THP") > energy(results, "canneal", "4KB")

    def test_walk_energy_dominates_4kb_for_mcf_and_cactus(self, results):
        for workload in ("mcf", "cactusADM"):
            breakdown = results[(workload, "4KB")].energy
            assert breakdown.fraction("page_walk") > 0.4

    def test_l1_tlbs_dominate_thp_energy(self, results):
        """Section 3.2: with THP the L1 TLBs are the main dynamic source.

        mcf and canneal retain residual walks under THP (their footprints
        defeat even 2 MB reach), so the L1 share is lower there.
        """
        for workload in ("omnetpp", "cactusADM"):
            breakdown = results[(workload, "THP")].energy
            assert breakdown.l1_tlb_pj / breakdown.total_pj > 0.6
        for workload in ("mcf", "canneal"):
            breakdown = results[(workload, "THP")].energy
            assert breakdown.l1_tlb_pj / breakdown.total_pj > 0.35


class TestTLBLiteShapes:
    def test_saves_energy_vs_thp(self, results):
        """TLB_Lite reduces dynamic energy vs THP (paper: -23% average)."""
        ratios = [
            energy(results, w, "TLB_Lite") / energy(results, w, "THP")
            for w in WORKLOADS
        ]
        assert sum(ratios) / len(ratios) < 0.95
        assert all(ratio <= 1.01 for ratio in ratios)

    def test_modest_performance_cost(self, results):
        """Miss cycles stay in THP's ballpark (paper: 16.6% -> 17.2%)."""
        for workload in WORKLOADS:
            lite = results[(workload, "TLB_Lite")].miss_cycles
            thp = results[(workload, "THP")].miss_cycles
            base = results[(workload, "4KB")].miss_cycles
            assert lite - thp < 0.25 * base

    def test_omnetpp_and_canneal_keep_all_ways(self, results):
        """Table 5: flat, wide hot sets pin the L1-4KB TLB at 4 ways."""
        for workload in ("omnetpp", "canneal"):
            shares = results[(workload, "TLB_Lite")].way_lookup_shares("L1-4KB")
            assert shares.get(4, 0) > 0.9

    def test_mcf_downsizes_4kb_tlb(self, results):
        """Table 5: mcf runs its L1-4KB TLB mostly below 4 ways."""
        shares = results[("mcf", "TLB_Lite")].way_lookup_shares("L1-4KB")
        assert shares.get(4, 0) < 0.5


class TestRMMShapes:
    def test_rmm_eliminates_walks(self, results):
        """Eager-paged ranges make L2 misses near-zero (paper Section 3.4)."""
        for workload in WORKLOADS:
            result = results[(workload, "RMM")]
            assert result.l2_mpki < 0.05
            assert result.energy.by_component["page_walk"] < 0.02 * result.total_energy_pj

    def test_rmm_l1_energy_stays_high(self, results):
        """RMM keeps probing both L1 TLBs: energy stays THP-like."""
        for workload in WORKLOADS:
            ratio = energy(results, workload, "RMM") / energy(results, workload, "THP")
            assert 0.5 < ratio < 1.3

    def test_range_walks_cost_energy_but_no_cycles(self, results):
        result = results[("mcf", "RMM")]
        assert result.range_walk_refs > 0
        # Cycle model has no range-walk term: cycles == 7*L1 + 50*L2.
        assert result.miss_cycles == result.l1_misses * 7 + result.l2_misses * 50


class TestRMMLiteShapes:
    def test_biggest_energy_reduction(self, results):
        """RMM_Lite wins overall (paper: -71% vs THP on average)."""
        for workload in WORKLOADS:
            ratio = energy(results, workload, "RMM_Lite") / energy(results, workload, "THP")
            assert ratio < 0.75, workload
        average = sum(
            energy(results, w, "RMM_Lite") / energy(results, w, "THP") for w in WORKLOADS
        ) / len(WORKLOADS)
        assert average < 0.55

    def test_l1_miss_cycles_nearly_eliminated(self, results):
        """Paper: -99% of L1-TLB-miss overhead on top of RMM's L2 wins."""
        for workload in WORKLOADS:
            lite = results[(workload, "RMM_Lite")].cycles.l1_miss_cycles
            thp = results[(workload, "THP")].cycles.l1_miss_cycles
            assert lite < 0.25 * max(thp, 1), workload

    def test_range_tlb_serves_most_hits(self, results):
        """Table 5: the L1-range TLB dominates hit attribution."""
        for workload in WORKLOADS:
            shares = results[(workload, "RMM_Lite")].hit_shares()
            assert shares.get("L1-range", 0) > 0.6, workload

    def test_l2_misses_near_zero(self, results):
        for workload in WORKLOADS:
            assert results[(workload, "RMM_Lite")].l2_mpki < 0.05


class TestTLBPPShapes:
    def test_tlb_pp_between_thp_and_rmm_lite(self, results):
        """TLB_PP saves energy vs THP but RMM_Lite beats it on average."""
        pp_ratios = []
        for workload in WORKLOADS:
            pp = energy(results, workload, "TLB_PP") / energy(results, workload, "THP")
            pp_ratios.append(pp)
            assert pp < 1.0
        rmm_lite_avg = sum(
            energy(results, w, "RMM_Lite") / energy(results, w, "THP") for w in WORKLOADS
        ) / len(WORKLOADS)
        assert rmm_lite_avg < sum(pp_ratios) / len(pp_ratios)

    def test_single_structure_probed(self, results):
        stats = results[("mcf", "TLB_PP")].structure_stats
        assert stats["L1-mixed"].lookups == results[("mcf", "TLB_PP")].accesses
        assert "L1-4KB" not in stats
