"""Differential tests for the streak-coalescing fast engine.

The fast engine (``Simulator(engine="fast")``) is only allowed to exist
because its equivalence to the reference drain loop is *proven*, not
argued:

* every TLB organization produces a byte-identical ``SimulationResult``
  and identical per-component state digests at **every** interval
  boundary (``digest_every=1``) under both engines;
* boundaries that land in the middle of a streak — a scheduled OS
  event, a Lite ``end_interval``, a timeline sample, or a
  ``checkpoint_hook`` call — split the run, and the digests at the
  split are unperturbed;
* a run killed mid-trace under the fast engine resumes from its
  snapshot to the same result and trail as an uninterrupted reference
  run;
* numpy-array and plain-list traces are both accepted and agree.

Divergences, should a change introduce one, are localized with
:mod:`repro.resilience.bisect` — see ``describe_divergence`` for the
component naming.
"""

import numpy as np
import pytest

from tests.fastpath_helpers import (
    SETTINGS,
    assert_engines_agree,
    small_workload,
    streaky_trace,
)
from repro.analysis.experiments import prepare_run
from repro.core.fastpath import ENGINES, encode_trace
from repro.core.organizations import EXTENDED_CONFIG_NAMES
from repro.errors import SimulationError, TraceError
from repro.resilience.bisect import (
    bisect_divergence,
    describe_divergence,
    record_digest_trail,
    record_resumed_trail,
)
from repro.workloads.tracefile import as_vpn_array


# ----------------------------------------------------------------------
# Trace preprocessing
# ----------------------------------------------------------------------
class TestEncodeTrace:
    def test_runs_become_sentinels(self):
        tokens, cum = encode_trace([5, 5, 5, 9, 7, 7])
        assert tokens == [5, -2, 9, 7, -1]
        assert cum.tolist() == [0, 1, 3, 4, 5, 6]

    def test_singletons_carry_no_sentinel(self):
        tokens, cum = encode_trace([3, 1, 4, 1])
        assert tokens == [3, 1, 4, 1]
        assert cum.tolist() == [0, 1, 2, 3, 4]

    def test_tokens_are_python_ints(self):
        tokens, _ = encode_trace(np.array([2, 2, 8], dtype=np.int64))
        assert all(type(token) is int for token in tokens)

    @pytest.mark.parametrize("seed", range(4))
    def test_round_trip(self, seed):
        rng = np.random.default_rng(seed)
        pages = rng.integers(0, 20, size=500)
        pages = np.repeat(pages, rng.integers(1, 6, size=500))[:700]
        tokens, cum = encode_trace(pages)
        decoded = []
        for token in tokens:
            if token < 0:
                decoded.extend([decoded[-1]] * -token)
            else:
                decoded.append(token)
        assert decoded == pages.tolist()
        assert cum[-1] == len(pages)

    def test_as_vpn_array_rejects_2d(self):
        with pytest.raises(TraceError):
            as_vpn_array(np.zeros((2, 2), dtype=np.int64))


# ----------------------------------------------------------------------
# Engine selection
# ----------------------------------------------------------------------
class TestEngineSelection:
    def test_engine_names(self):
        assert ENGINES == ("reference", "fast")

    def test_unknown_engine_rejected(self):
        with pytest.raises(SimulationError, match="engine"):
            prepare_run(small_workload(), "4KB", SETTINGS, engine="warp")

    def test_prepare_run_threads_engine(self):
        prepared = prepare_run(small_workload(), "4KB", SETTINGS, engine="fast")
        assert prepared.simulator.engine == "fast"


# ----------------------------------------------------------------------
# Differential equivalence: every organization, every boundary
# ----------------------------------------------------------------------
class TestDifferentialEquivalence:
    @pytest.mark.parametrize("config_name", EXTENDED_CONFIG_NAMES)
    def test_results_and_digests_identical(self, config_name):
        """Byte-identical result + per-boundary digests for each config."""
        reference = record_digest_trail(small_workload(), config_name, SETTINGS)
        fast = record_digest_trail(
            small_workload(), config_name, SETTINGS, engine="fast"
        )
        divergence = bisect_divergence(reference.trail, fast.trail)
        assert divergence is None, describe_divergence(divergence)
        assert fast.boundaries == reference.boundaries
        assert fast.result == reference.result


# ----------------------------------------------------------------------
# Boundary splitting: streaks must split at every boundary kind
# ----------------------------------------------------------------------
class TestStreakSplitting:
    def test_timeline_sample_splits_streak(self):
        """Timeline samples land mid-run (108 % 40 != 0) on 4KB."""
        assert_engines_agree("4KB", streaky_trace())

    def test_lite_interval_splits_streak(self):
        """Lite end_interval fires at access 3333 — mid-run — on TLB_Lite."""
        assert_engines_agree("TLB_Lite", streaky_trace())

    def test_range_hierarchy_splits_streak(self):
        """RMM_Lite: range TLBs + Lite resizing over the same streaks."""
        assert_engines_agree("RMM_Lite", streaky_trace())

    def test_event_mid_streak_splits_and_flushes(self):
        """A TLB flush scheduled mid-run must see (and leave) exact state."""
        # 2_020 = 50 * RUN_LENGTH + 20: the event lands mid-streak; the
        # second one lands mid-streak in the measured phase.
        assert_engines_agree("THP", streaky_trace(), events_at=(2_020, 4_444))

    def test_checkpoint_hook_mid_streak(self):
        """digest_every=1 checkpoints observe unperturbed pending counts.

        Every boundary of the streaky runs above is a checkpoint_hook
        call; this case pins the composition — events *and* Lite
        intervals *and* samples all splitting the same streak stream.
        """
        assert_engines_agree("TLB_Lite", streaky_trace(), events_at=(3_350,))


# ----------------------------------------------------------------------
# Kill-and-resume under the fast engine
# ----------------------------------------------------------------------
class TestResumeDeterminism:
    @pytest.mark.parametrize(
        "config_name", ("4KB", "TLB_Lite", "RMM_Lite", "FA_Lite", "Banked")
    )
    def test_fast_resumed_matches_fresh_reference(self, config_name, tmp_path):
        fresh = record_digest_trail(small_workload(), config_name, SETTINGS)
        resumed = record_resumed_trail(
            small_workload(),
            config_name,
            SETTINGS,
            abort_after=4,
            snapshot_path=tmp_path / "cell.ckpt",
            engine="fast",
        )
        divergence = bisect_divergence(fresh.trail, resumed.trail)
        assert divergence is None, describe_divergence(divergence)
        assert resumed.result == fresh.result


# ----------------------------------------------------------------------
# Trace input types and the tolerant fallback
# ----------------------------------------------------------------------
class TestTraceInputs:
    @pytest.mark.parametrize("engine", ENGINES)
    def test_list_and_array_traces_agree(self, engine):
        prepared = prepare_run(small_workload(), "4KB", SETTINGS, engine=engine)
        array_trace = as_vpn_array(prepared.trace)

        as_array = prepare_run(small_workload(), "4KB", SETTINGS, engine=engine)
        as_array.trace = array_trace
        as_list = prepare_run(small_workload(), "4KB", SETTINGS, engine=engine)
        as_list.trace = array_trace.tolist()
        assert as_array.run() == as_list.run()

    def test_tolerant_mode_falls_back_to_reference_loop(self):
        """engine="fast" + on_fault="record" must still record faults."""
        results = []
        for engine in ENGINES:
            prepared = prepare_run(
                small_workload(), "4KB", SETTINGS, on_fault="record", engine=engine
            )
            trace = as_vpn_array(prepared.trace).copy()
            trace[4_000] = -7  # unmappable: PageFault in the access path
            prepared.trace = trace
            results.append(prepared.run())
        reference, fast = results
        assert reference.faulted_accesses == 1
        assert reference.fault_records[0].vpn == -7
        assert fast == reference

    def test_tolerant_mode_never_constructs_fast_engine(self, monkeypatch):
        """The fallback is structural: FastEngine is not even built."""
        from repro.core.fastpath import FastEngine

        def explode(self, hierarchy, trace):
            raise AssertionError("FastEngine constructed in tolerant mode")

        monkeypatch.setattr(FastEngine, "__init__", explode)
        prepared = prepare_run(
            small_workload(), "4KB", SETTINGS, on_fault="record", engine="fast"
        )
        trace = as_vpn_array(prepared.trace).copy()
        trace[4_000] = -7
        prepared.trace = trace
        result = prepared.run()
        assert result.faulted_accesses == 1
