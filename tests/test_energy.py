"""Tests for the Cacti parameter library and the Table 3 energy model."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.energy.cacti import (
    L1_CACHE,
    L2_CACHE_READ_PJ,
    MMU_CACHE_PDE,
    TABLE2_FULLY_ASSOC,
    TABLE2_PAGE_TLB,
    TABLE2_RANGE_TLB,
    EnergyParams,
    fully_assoc_params,
    lite_resized_params,
    page_tlb_params,
)
from repro.energy.model import COMPONENTS, EnergyBinding, EnergyModel
from repro.tlb.base import TLBStats


class TestTable2Values:
    """The paper's Table 2 numbers are the calibrated ground truth."""

    def test_l1_4kb_full(self):
        params = page_tlb_params(64, 4)
        assert params.read_pj == 5.865
        assert params.write_pj == 6.858
        assert params.leakage_mw == 0.3632

    def test_l1_4kb_way_disabled(self):
        assert page_tlb_params(32, 2).read_pj == 1.881
        assert page_tlb_params(16, 1).read_pj == 0.697

    def test_l1_2mb_family(self):
        assert page_tlb_params(32, 4).read_pj == 4.801
        assert page_tlb_params(16, 2).read_pj == 1.536
        assert page_tlb_params(8, 1).read_pj == 0.568

    def test_l2_4kb(self):
        assert page_tlb_params(512, 4).read_pj == 8.078
        assert page_tlb_params(512, 4).write_pj == 12.379

    def test_range_tlbs(self):
        assert fully_assoc_params(4, range_tags=True).read_pj == 1.806
        assert fully_assoc_params(32, range_tags=True).read_pj == 3.306

    def test_mmu_caches(self):
        assert MMU_CACHE_PDE.read_pj == 1.824
        assert fully_assoc_params(4).read_pj == 0.766
        assert fully_assoc_params(2).read_pj == 0.473

    def test_l1_cache(self):
        assert L1_CACHE.read_pj == 174.171


class TestAnalyticExtensions:
    def test_l2_cache_scales_from_l1(self):
        assert L2_CACHE_READ_PJ == pytest.approx(174.171 * (8**0.5))

    def test_power_law_close_to_table_points(self):
        """Derived values stay within ~35% of nearby Table 2 entries."""
        derived = page_tlb_params(128, 4)  # not in the table
        assert page_tlb_params(64, 4).read_pj < derived.read_pj < 2 * page_tlb_params(64, 4).read_pj

    def test_same_set_reference_preferred(self):
        # 8 sets -> scale from the L1-2MB family.
        derived = page_tlb_params(64, 8)
        reference = page_tlb_params(32, 4)
        assert derived.read_pj > reference.read_pj

    @given(st.sampled_from([1, 2, 4, 8]), st.sampled_from([1, 2, 4, 8]))
    def test_monotone_in_ways(self, ways_a, ways_b):
        if ways_a < ways_b:
            assert page_tlb_params(16 * ways_a, ways_a).read_pj < page_tlb_params(
                16 * ways_b, ways_b
            ).read_pj

    def test_fully_assoc_interpolation_monotone(self):
        assert fully_assoc_params(2).read_pj < fully_assoc_params(3).read_pj
        assert fully_assoc_params(3).read_pj < fully_assoc_params(8).read_pj

    def test_lite_resized_params(self):
        full = EnergyParams(10.0, 5.0, 1.0)
        half = lite_resized_params(full, 0.5)
        assert half.read_pj == pytest.approx(10.0 * 0.5**0.7)
        assert lite_resized_params(full, 1.0) == full
        with pytest.raises(ValueError):
            lite_resized_params(full, 0.0)

    def test_scaled(self):
        params = EnergyParams(2.0, 4.0, 1.0)
        assert params.scaled(0.5) == EnergyParams(1.0, 2.0, 0.5)


def binding_with(lookups_by_ways, fills_by_ways, params_by_ways):
    stats = TLBStats()
    stats.lookups_by_ways.update(lookups_by_ways)
    stats.fills_by_ways.update(fills_by_ways)
    stats.hits = sum(lookups_by_ways.values())
    return EnergyBinding("X", "l1_page_tlbs", stats, lambda w: params_by_ways[w])


class TestEnergyModel:
    def test_structure_energy_formula(self):
        """E = A * E_read + M * E_write, per way configuration."""
        params = {4: EnergyParams(2.0, 3.0), 2: EnergyParams(1.0, 1.5)}
        binding = binding_with({4: 10, 2: 4}, {4: 2, 2: 1}, params)
        model = EnergyModel()
        energy = model.structure_energy(binding)
        assert energy == pytest.approx(10 * 2.0 + 4 * 1.0 + 2 * 3.0 + 1 * 1.5)

    def test_compute_groups_by_component(self):
        params = {4: EnergyParams(1.0, 1.0)}
        binding = binding_with({4: 5}, {}, params)
        breakdown = EnergyModel().compute([binding], page_walk_refs=3, range_walk_refs=2)
        assert breakdown.by_component["l1_page_tlbs"] == 5.0
        assert breakdown.by_component["page_walk"] == pytest.approx(3 * 174.171)
        assert breakdown.by_component["range_walk"] == pytest.approx(2 * 174.171)
        assert breakdown.total_pj == pytest.approx(5.0 + 5 * 174.171)
        assert breakdown.by_structure["X"] == 5.0

    def test_walk_locality_knob(self):
        """Figure 3: walk reference energy interpolates L1<->L2 cache."""
        all_l1 = EnergyModel(walk_l1_hit_ratio=1.0)
        all_l2 = EnergyModel(walk_l1_hit_ratio=0.0)
        half = EnergyModel(walk_l1_hit_ratio=0.5)
        assert all_l1.walk_ref_pj == pytest.approx(174.171)
        assert all_l2.walk_ref_pj == pytest.approx(L2_CACHE_READ_PJ)
        assert half.walk_ref_pj == pytest.approx((174.171 + L2_CACHE_READ_PJ) / 2)

    def test_invalid_ratio_rejected(self):
        with pytest.raises(ValueError):
            EnergyModel(walk_l1_hit_ratio=1.5)

    def test_fraction_and_l1_share(self):
        params = {4: EnergyParams(1.0, 1.0)}
        binding = binding_with({4: 10}, {}, params)
        breakdown = EnergyModel().compute([binding])
        assert breakdown.fraction("l1_page_tlbs") == pytest.approx(1.0)
        assert breakdown.l1_tlb_pj == 10.0

    def test_component_labels_complete(self):
        breakdown = EnergyModel().compute([])
        assert set(breakdown.by_component) == set(COMPONENTS)
        assert breakdown.total_pj == 0.0
        assert breakdown.fraction("page_walk") == 0.0
