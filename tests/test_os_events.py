"""Tests for mid-run OS events: huge-page breakdown and TLB flushes.

The paper's Section 4.2.2 motivates Lite's degradation response with
exactly this scenario: "the operating system breaks huge pages to 4 KB
pages to respond to memory pressure" — these tests exercise that path
end to end.
"""

import numpy as np
import pytest

from repro.core.organizations import build_thp, build_tlb_lite
from repro.core.params import LiteParams
from repro.core.simulator import Simulator
from repro.mem.paging import TransparentHugePaging
from repro.mem.physical import PhysicalMemory
from repro.mem.process import Process
from repro.mmu.translation import PAGES_PER_2MB, PageSize


def make_process(chunks=8):
    process = Process(PhysicalMemory(1 << 30, seed=3), TransparentHugePaging())
    process.mmap(PAGES_PER_2MB * chunks, name="heap")
    return process


class TestBreakHugePage:
    def test_split_preserves_translations(self):
        process = make_process()
        heap = next(iter(process.address_space))
        probe = heap.start_vpn + 700
        before = process.translate(probe)
        leaf = process.break_huge_page(probe)
        assert leaf.page_size is PageSize.SIZE_2MB
        assert process.translate(probe) == before  # frames stay in place
        assert process.leaf_for(probe).page_size is PageSize.SIZE_4KB

    def test_split_only_affects_one_chunk(self):
        process = make_process()
        heap = next(iter(process.address_space))
        process.break_huge_page(heap.start_vpn)
        histogram = process.page_size_histogram()
        assert histogram[PageSize.SIZE_2MB] == 7
        assert histogram[PageSize.SIZE_4KB] == PAGES_PER_2MB

    def test_split_4kb_page_rejected(self):
        process = make_process()
        heap = next(iter(process.address_space))
        process.break_huge_page(heap.start_vpn)
        with pytest.raises(ValueError):
            process.break_huge_page(heap.start_vpn)

    def test_break_fraction(self):
        process = make_process(chunks=10)
        count = process.break_huge_pages(0.5, seed=1)
        assert count == 5
        assert process.page_size_histogram()[PageSize.SIZE_2MB] == 5
        with pytest.raises(ValueError):
            process.break_huge_pages(2.0)


class TestShootdown:
    def test_stale_huge_entry_removed(self):
        process = make_process()
        org = build_thp(process)
        heap = next(iter(process.address_space))
        org.hierarchy.access(heap.start_vpn)  # loads the 2MB entry
        slot_2mb = org.hierarchy.l1_slots[1]
        assert slot_2mb.tlb.peek(heap.start_vpn >> 9) is not None
        process.break_huge_page(heap.start_vpn)
        org.hierarchy.shootdown_huge_page(heap.start_vpn)
        assert slot_2mb.tlb.peek(heap.start_vpn >> 9) is None
        # Next access walks and loads 4KB entries.
        org.hierarchy.access(heap.start_vpn)
        assert org.hierarchy.l1_slots[0].tlb.peek(heap.start_vpn) is not None

    def test_flush_tlbs(self):
        process = make_process()
        org = build_thp(process)
        heap = next(iter(process.address_space))
        org.hierarchy.access(heap.start_vpn)
        org.hierarchy.flush_tlbs()
        walks_before = org.hierarchy.walker.stats.walks
        org.hierarchy.access(heap.start_vpn)
        assert org.hierarchy.walker.stats.walks == walks_before + 1


class TestSimulatorEvents:
    def make_trace(self, process, n=30_000):
        heap = next(iter(process.address_space))
        rng = np.random.default_rng(0)
        # Hot accesses across all huge pages, 3-burst.
        pages = heap.start_vpn + rng.integers(heap.num_pages, size=n // 3)
        return np.repeat(pages, 3)[:n].astype(np.int64)

    def test_event_fires_at_position(self):
        process = make_process()
        org = build_thp(process)
        fired_at = []

        def event(organization):
            fired_at.append(organization.hierarchy.accesses)

        sim = Simulator(org)
        trace = self.make_trace(process)
        sim.run(trace, fast_forward_accesses=1000, events=[(5000, event)])
        # 5000 trace positions = 1000 warm-up + 4000 measured accesses.
        assert fired_at == [4000]

    def test_breakdown_event_causes_miss_spike_and_lite_reacts(self):
        """Huge-page breakdown raises MPKI; Lite's degradation response
        re-enables all ways (the paper's motivating scenario)."""
        process = make_process(chunks=16)
        lite_params = LiteParams(
            interval_instructions=3000, reactivate_probability=0.0
        )
        org = build_tlb_lite(process, lite_params=lite_params, record_history=True)
        hierarchy = org.hierarchy

        def breakdown(_organization):
            broken = process.break_huge_pages(0.9, seed=2)
            for leaf in list(process.page_table.iter_translations()):
                pass  # page table already updated
            # Shoot down every demoted chunk.
            heap = next(iter(process.address_space))
            for chunk in range(16):
                base = heap.start_vpn + chunk * PAGES_PER_2MB
                if process.leaf_for(base).page_size is PageSize.SIZE_4KB:
                    hierarchy.shootdown_huge_page(base)
            assert broken == 14

        sim = Simulator(org, instructions_per_access=3.0)
        trace = self.make_trace(process, 60_000)
        result = sim.run(trace, fast_forward_accesses=6_000, events=[(33_000, breakdown)])

        # MPKI in the second half (post-breakdown) is clearly higher.
        half = len(result.timeline) // 2
        before = sum(s.l1_mpki for s in result.timeline[:half]) / half
        after = sum(s.l1_mpki for s in result.timeline[half:]) / (
            len(result.timeline) - half
        )
        assert after > 2 * before + 0.5
        # Lite reacted: a degradation reactivation occurred.
        assert org.lite.stats.degradation_reactivations >= 1
