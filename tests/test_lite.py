"""Tests for the Lite controller: decision algorithm, reactivation, knobs."""

import pytest

from repro.core.lite import LiteController, ResizableUnit
from repro.core.params import LiteParams
from repro.tlb.fully_assoc import FullyAssociativeTLB
from repro.tlb.set_assoc import SetAssociativeTLB


def make_controller(**overrides):
    defaults = dict(
        interval_instructions=1000,
        threshold_mode="relative",
        epsilon_relative=0.125,
        reactivate_probability=0.0,  # deterministic by default
        seed=0,
    )
    defaults.update(overrides)
    params = LiteParams(**defaults)
    tlb = SetAssociativeTLB("L1-4KB", 64, 4)
    controller = LiteController([tlb], params, record_history=True)
    return controller, tlb


def feed_counters(controller, name, per_group):
    """Directly set the interval's LRU-distance counters."""
    raw = controller.counters[name].raw
    for index, value in enumerate(per_group):
        raw[index] = value


class TestDecision:
    def test_downsizes_when_deep_ways_useless(self):
        controller, tlb = make_controller()
        # 1000 hits all at MRU; zero utility beyond way 0.
        feed_counters(controller, "L1-4KB", [1000, 0, 0])
        action = controller.end_interval(l1_misses=100, instructions=1000)
        assert action == "decide"
        assert tlb.active_ways == 1

    def test_keeps_ways_with_deep_utility(self):
        controller, tlb = make_controller()
        feed_counters(controller, "L1-4KB", [500, 200, 300])
        controller.end_interval(l1_misses=100, instructions=1000)
        assert tlb.active_ways == 4

    def test_partial_downsize_to_two_ways(self):
        controller, tlb = make_controller()
        # Going to 2 ways loses only the rank-2-3 hits (5, under 12.5% of
        # 100 misses); going to 1 way would also lose the 300 rank-1 hits.
        feed_counters(controller, "L1-4KB", [500, 300, 5])
        controller.end_interval(l1_misses=100, instructions=1000)
        assert tlb.active_ways == 2

    def test_threshold_is_relative_to_actual_mpki(self):
        controller, tlb = make_controller()
        # 50 extra misses vs 1000 actual: 5% < 12.5% -> allowed.
        feed_counters(controller, "L1-4KB", [0, 50, 50])
        controller.end_interval(l1_misses=1000, instructions=1000)
        assert tlb.active_ways == 1

    def test_zero_actual_mpki_allows_only_free_downsizing(self):
        controller, tlb = make_controller()
        # Relative threshold at 0 MPKI is 0: halving to 2 ways costs
        # nothing (no rank-2-3 hits) but 1 way would add one miss.
        feed_counters(controller, "L1-4KB", [100, 1, 0])
        controller.end_interval(l1_misses=0, instructions=1000)
        assert tlb.active_ways == 2

    def test_absolute_threshold_permits_tiny_increase(self):
        controller, tlb = make_controller(
            threshold_mode="absolute", epsilon_absolute=0.1
        )
        # 0 actual misses; rank>=1 hits would add 0.05 MPKI < 0.1.
        feed_counters(controller, "L1-4KB", [100, 5, 0])
        controller.end_interval(l1_misses=0, instructions=100_000)
        assert tlb.active_ways == 1

    def test_absolute_threshold_blocks_larger_increase(self):
        controller, tlb = make_controller(
            threshold_mode="absolute", epsilon_absolute=0.1
        )
        # 2 ways adds 0.03 MPKI (<= 0.1); 1 way would add 0.53: settle at 2.
        feed_counters(controller, "L1-4KB", [100, 50, 3])
        controller.end_interval(l1_misses=0, instructions=100_000)
        assert tlb.active_ways == 2

    def test_min_ways_respected(self):
        controller, tlb = make_controller(min_ways=2)
        feed_counters(controller, "L1-4KB", [1000, 0, 0])
        controller.end_interval(l1_misses=100, instructions=1000)
        assert tlb.active_ways == 2

    def test_never_fully_disables(self):
        controller, tlb = make_controller()
        for _ in range(5):
            controller.end_interval(l1_misses=0, instructions=1000)
        assert tlb.active_ways >= 1


class TestReactivation:
    def test_degradation_reactivates_all_ways(self):
        controller, tlb = make_controller()
        feed_counters(controller, "L1-4KB", [1000, 0, 0])
        controller.end_interval(l1_misses=10, instructions=1000)
        assert tlb.active_ways == 1
        # MPKI jumps 10 -> 100: beyond 12.5% over previous.
        action = controller.end_interval(l1_misses=100, instructions=1000)
        assert action == "degradation-reactivate"
        assert tlb.active_ways == 4

    def test_small_degradation_tolerated(self):
        controller, tlb = make_controller()
        feed_counters(controller, "L1-4KB", [1000, 0, 0])
        controller.end_interval(l1_misses=100, instructions=1000)
        assert tlb.active_ways == 1
        action = controller.end_interval(l1_misses=105, instructions=1000)
        assert action == "decide"
        assert tlb.active_ways == 1

    def test_random_reactivation_fires_with_probability_one(self):
        controller, tlb = make_controller(reactivate_probability=1.0)
        tlb.set_active_ways(1)
        action = controller.end_interval(l1_misses=0, instructions=1000)
        assert action == "random-reactivate"
        assert tlb.active_ways == 4
        assert controller.stats.random_reactivations == 1

    def test_random_reactivation_rate_statistical(self):
        controller, _tlb = make_controller(reactivate_probability=0.25, seed=9)
        for _ in range(400):
            controller.end_interval(l1_misses=0, instructions=1000)
        rate = controller.stats.random_reactivations / 400
        assert 0.15 < rate < 0.35

    def test_counters_reset_each_interval(self):
        controller, _tlb = make_controller()
        feed_counters(controller, "L1-4KB", [5, 5, 5])
        controller.end_interval(l1_misses=10, instructions=1000)
        assert controller.counters["L1-4KB"].total_hits == 0


class TestBookkeeping:
    def test_history_records(self):
        controller, _tlb = make_controller()
        controller.end_interval(l1_misses=50, instructions=1000)
        controller.end_interval(l1_misses=60, instructions=1000)
        assert len(controller.history) == 2
        record = controller.history[0]
        assert record.actual_mpki == 50.0
        # Records capture the post-decision configuration (all counters
        # were zero, so Lite downsized to 1 way for free).
        assert record.active_units == {"L1-4KB": 1}
        assert controller.history[1].instructions_seen == 2000

    def test_active_configuration(self):
        controller, tlb = make_controller()
        assert controller.active_configuration() == {"L1-4KB": 4}
        tlb.set_active_ways(2)
        assert controller.active_configuration() == {"L1-4KB": 2}

    def test_invalid_interval_rejected(self):
        controller, _tlb = make_controller()
        with pytest.raises(ValueError):
            controller.end_interval(l1_misses=0, instructions=0)

    def test_multiple_tlbs_decided_independently(self):
        params = LiteParams(
            interval_instructions=1000, reactivate_probability=0.0, seed=0
        )
        a = SetAssociativeTLB("A", 64, 4)
        b = SetAssociativeTLB("B", 32, 4)
        controller = LiteController([a, b], params)
        controller.counters["A"].raw[:] = [1000, 0, 0]
        controller.counters["B"].raw[:] = [0, 400, 400]
        controller.end_interval(l1_misses=100, instructions=1000)
        assert a.active_ways == 1
        assert b.active_ways == 4

    def test_downsize_counter(self):
        controller, _tlb = make_controller()
        feed_counters(controller, "L1-4KB", [1000, 0, 0])
        controller.end_interval(l1_misses=100, instructions=1000)
        assert controller.stats.downsizes == 1


class TestResizableUnit:
    def test_set_assoc_adapter(self):
        tlb = SetAssociativeTLB("t", 64, 4)
        unit = ResizableUnit(tlb)
        assert unit.max_units == 4
        unit.resize(2)
        assert tlb.active_ways == 2

    def test_fully_assoc_adapter(self):
        tlb = FullyAssociativeTLB("t", 8)
        unit = ResizableUnit(tlb)
        assert unit.max_units == 8
        unit.resize(2)
        assert tlb.active_entries == 2

    def test_fully_assoc_lite_integration(self):
        """Section 4.4: Lite drives a fully-associative TLB by capacity."""
        params = LiteParams(interval_instructions=1000, reactivate_probability=0.0)
        tlb = FullyAssociativeTLB("fa", 8)
        controller = LiteController([tlb], params)
        controller.counters["fa"].raw[:] = [1000, 0, 0, 0]
        controller.end_interval(l1_misses=100, instructions=1000)
        assert tlb.active_entries == 1

    def test_non_power_of_two_capacity_rejected(self):
        with pytest.raises(ValueError):
            ResizableUnit(FullyAssociativeTLB("t", 6))

    def test_unresizable_rejected(self):
        with pytest.raises(TypeError):
            ResizableUnit(object())
