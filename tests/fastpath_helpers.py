"""Shared differential-run fixtures for the engine and observability suites.

``test_fastpath.py`` proved the fast engine equivalent to the reference
loop with a small digest harness; the observability suite needs the same
harness to prove telemetry *inert* (digest-identical with the hub off,
on, and exporting mid-run).  The pieces live here, importable from both
suites as ``tests.fastpath_helpers``.

The trace scale is deliberately tiny (6 000 accesses) but the boundary
schedule is adversarial: the run length of the synthetic streak traces
divides neither the timeline window nor the Lite interval, so samples
and ``end_interval`` calls land mid-streak and force boundary splits.
"""

import numpy as np

from repro.analysis.experiments import ExperimentSettings, prepare_run
from repro.resilience.bisect import bisect_divergence, describe_divergence
from repro.resilience.checkpoint import SimulationCheckpointer
from repro.workloads.base import VMASpec, Workload
from repro.workloads.patterns import Zipf
from repro.workloads.tracefile import as_vpn_array

SETTINGS = ExperimentSettings(trace_accesses=6_000, seed=5, physical_bytes=1 << 28)

#: Run length of the synthetic streak traces.  Chosen so the default
#: boundary schedule splits runs: the timeline window (5400 measured
#: accesses / 50 windows = 108) and the scaled Lite interval
#: (10_000 instructions / 3 ipa = 3333 accesses) are both indivisible
#: by it, so samples and interval ends land mid-run.
RUN_LENGTH = 40


def small_workload(name: str = "fastpath") -> Workload:
    return Workload(
        name,
        "TEST",
        [VMASpec("heap", 6), VMASpec("stack", 1, thp_eligible=False)],
        lambda regions: Zipf(regions["heap"].subregion(0, 24), alpha=1.1, burst=3),
        instructions_per_access=3.0,
    )


def streaky_trace() -> np.ndarray:
    """A mapped trace of constant-length streaks (RUN_LENGTH repeats)."""
    prepared = prepare_run(small_workload(), "4KB", SETTINGS)
    base = as_vpn_array(prepared.trace)[: SETTINGS.trace_accesses // RUN_LENGTH]
    return np.repeat(base, RUN_LENGTH)


def run_with_digests(
    config_name,
    trace,
    engine,
    events_at=(),
    observability=None,
    on_boundary=None,
):
    """One run over a custom trace: (digest trail, result).

    ``observability`` threads a telemetry hub through the simulator and
    the checkpointer; ``on_boundary(boundary)`` is called from the
    checkpoint hook at every interval boundary (the inertness suite uses
    it to export metrics *during* the run).
    """
    prepared = prepare_run(
        small_workload(),
        config_name,
        SETTINGS,
        engine=engine,
        observability=observability,
    )
    prepared.trace = trace
    checkpointer = SimulationCheckpointer(
        prepared.simulator,
        prepared.process,
        digest_every=1,
        observability=observability,
    )
    events = [
        (position, lambda org: org.hierarchy.flush_tlbs()) for position in events_at
    ]
    hook = checkpointer
    if on_boundary is not None:

        def hook(state):
            checkpointer(state)
            on_boundary(state["boundary"])

    result = prepared.run(events=events, checkpoint_hook=hook)
    return checkpointer.trail, result


def assert_engines_agree(config_name, trace, events_at=()):
    ref_trail, ref_result = run_with_digests(config_name, trace, "reference", events_at)
    fast_trail, fast_result = run_with_digests(config_name, trace, "fast", events_at)
    divergence = bisect_divergence(ref_trail, fast_trail)
    assert divergence is None, describe_divergence(divergence)
    assert fast_result == ref_result
