"""Tests for the workload pattern primitives."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads.patterns import (
    Mixture,
    Phased,
    Region,
    RepeatingPhases,
    SequentialScan,
    ShuffledScan,
    StridedSet,
    UniformRandom,
    Zipf,
)


def rng(seed=0):
    return np.random.default_rng(seed)


REGION = Region(1000, 500)


def in_region(trace, region=REGION):
    return bool(np.all((trace >= region.start_vpn) & (trace < region.end_vpn)))


class TestRegion:
    def test_subregion(self):
        sub = REGION.subregion(100, 50)
        assert sub.start_vpn == 1100
        assert sub.num_pages == 50

    def test_subregion_bounds_checked(self):
        with pytest.raises(ValueError):
            REGION.subregion(490, 20)
        with pytest.raises(ValueError):
            REGION.subregion(-1, 10)

    def test_empty_region_rejected(self):
        with pytest.raises(ValueError):
            Region(0, 0)


class TestSequentialScan:
    def test_in_bounds_and_length(self):
        trace = SequentialScan(REGION, burst=4).generate(rng(), 1000)
        assert len(trace) == 1000
        assert in_region(trace)

    def test_burst_runs(self):
        trace = SequentialScan(REGION, burst=8).generate(rng(), 800)
        # Pages repeat exactly 8 times consecutively.
        changes = np.count_nonzero(np.diff(trace))
        assert changes == len(trace) // 8 - 1 + (0 if len(trace) % 8 == 0 else 1)

    def test_consecutive_pages(self):
        trace = SequentialScan(REGION, stride_pages=1, burst=1).generate(rng(), 100)
        diffs = np.diff(trace)
        assert np.all((diffs == 1) | (diffs == 1 - REGION.num_pages))

    def test_stride(self):
        trace = SequentialScan(REGION, stride_pages=7, burst=1).generate(rng(), 50)
        diffs = np.diff(trace) % REGION.num_pages
        assert np.all(diffs == 7)

    def test_wraps_region(self):
        trace = SequentialScan(Region(0, 10), burst=1).generate(rng(), 100)
        assert set(np.unique(trace)) == set(range(10))


class TestShuffledScan:
    def test_visits_every_page_before_repeat(self):
        region = Region(0, 97)
        trace = ShuffledScan(region, burst=1).generate(rng(), 97)
        assert len(np.unique(trace)) == 97

    def test_deterministic_given_seed(self):
        a = ShuffledScan(REGION, burst=2).generate(rng(5), 300)
        b = ShuffledScan(REGION, burst=2).generate(rng(5), 300)
        assert np.array_equal(a, b)

    def test_not_sequential(self):
        trace = ShuffledScan(Region(0, 200), burst=1).generate(rng(), 200)
        assert np.count_nonzero(np.diff(trace) == 1) < 30


class TestUniformRandomAndZipf:
    def test_uniform_bounds(self):
        trace = UniformRandom(REGION, burst=2).generate(rng(), 999)
        assert len(trace) == 999
        assert in_region(trace)

    def test_zipf_bounds(self):
        trace = Zipf(REGION, alpha=1.1, burst=3).generate(rng(), 1000)
        assert in_region(trace)

    def test_zipf_skew_increases_with_alpha(self):
        def top_share(alpha):
            trace = Zipf(Region(0, 1000), alpha=alpha, burst=1).generate(rng(1), 20_000)
            _, counts = np.unique(trace, return_counts=True)
            counts.sort()
            return counts[-10:].sum() / counts.sum()

        assert top_share(1.5) > top_share(0.5)

    def test_zipf_alpha_zero_is_uniform_like(self):
        trace = Zipf(Region(0, 100), alpha=0.0, burst=1).generate(rng(2), 20_000)
        _, counts = np.unique(trace, return_counts=True)
        assert counts.max() / counts.min() < 3

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            UniformRandom(REGION, burst=0)
        with pytest.raises(ValueError):
            Zipf(REGION, alpha=-1)


class TestStridedSet:
    def test_touches_exactly_the_strided_pages(self):
        region = Region(0, 10_000)
        pattern = StridedSet(region, num_pages=32, stride_pages=100, burst=1)
        trace = pattern.generate(rng(), 5000)
        assert set(np.unique(trace)) <= {i * 100 for i in range(32)}
        assert len(np.unique(trace)) > 25

    def test_span_checked(self):
        with pytest.raises(ValueError):
            StridedSet(Region(0, 100), num_pages=32, stride_pages=100)

    def test_spans_many_huge_pages(self):
        region = Region(0, 30_000)
        trace = StridedSet(region, num_pages=256, stride_pages=93, burst=1).generate(
            rng(), 10_000
        )
        huge_pages = np.unique(trace >> 9)
        assert len(huge_pages) > 30


class TestMixture:
    def test_weights_respected(self):
        a = UniformRandom(Region(0, 10), burst=1)
        b = UniformRandom(Region(1000, 10), burst=1)
        trace = Mixture([(a, 0.8), (b, 0.2)]).generate(rng(3), 10_000)
        share_a = np.mean(trace < 100)
        assert 0.75 < share_a < 0.85

    def test_burst_runs_survive_interleaving(self):
        """Component streams are consumed sequentially: the same page is
        re-referenced across the interleave, not skipped."""
        a = SequentialScan(Region(0, 400), burst=8)
        b = UniformRandom(Region(10_000, 10), burst=1)
        trace = Mixture([(a, 0.7), (b, 0.3)]).generate(rng(4), 8000)
        a_pages = trace[trace < 10_000]
        # Every scan page appears ~8 times in total.
        _, counts = np.unique(a_pages, return_counts=True)
        assert counts.mean() > 5

    def test_weights_normalised(self):
        a = UniformRandom(Region(0, 10), burst=1)
        mixture = Mixture([(a, 5), (a, 15)])
        assert mixture.weights.tolist() == [0.25, 0.75]

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Mixture([])


class TestPhased:
    def test_phases_in_order(self):
        a = UniformRandom(Region(0, 10), burst=1)
        b = UniformRandom(Region(1000, 10), burst=1)
        trace = Phased([(a, 0.5), (b, 0.5)]).generate(rng(), 1000)
        assert np.all(trace[:500] < 100)
        assert np.all(trace[500:] >= 1000)

    def test_exact_length(self):
        a = UniformRandom(Region(0, 10), burst=3)
        trace = Phased([(a, 1 / 3), (a, 1 / 3), (a, 1 / 3)]).generate(rng(), 1001)
        assert len(trace) == 1001

    def test_repeating_phases(self):
        a = UniformRandom(Region(0, 10), burst=1)
        b = UniformRandom(Region(1000, 10), burst=1)
        trace = RepeatingPhases([(a, 0.5), (b, 0.5)], repeats=4).generate(rng(), 800)
        assert len(trace) == 800
        # Transitions between regions happen 7 times (4 repeats x 2 phases).
        is_b = trace >= 1000
        transitions = np.count_nonzero(np.diff(is_b.astype(int)))
        assert transitions == 7

    def test_invalid(self):
        with pytest.raises(ValueError):
            Phased([])
        a = UniformRandom(Region(0, 10), burst=1)
        with pytest.raises(ValueError):
            RepeatingPhases([(a, 1.0)], repeats=0)


@settings(max_examples=25, deadline=None)
@given(
    n=st.integers(min_value=1, max_value=3000),
    seed=st.integers(min_value=0, max_value=100),
)
def test_all_patterns_exact_length_and_bounds(n, seed):
    region = Region(64, 2048)
    patterns = [
        SequentialScan(region, stride_pages=3, burst=5),
        ShuffledScan(region, burst=2),
        UniformRandom(region, burst=4),
        Zipf(region, alpha=1.2, burst=3),
        StridedSet(region, num_pages=64, stride_pages=31, burst=2),
        Mixture([(UniformRandom(region, burst=2), 0.5), (Zipf(region, alpha=1.0), 0.5)]),
        Phased([(UniformRandom(region, burst=2), 0.3), (SequentialScan(region), 0.7)]),
    ]
    for pattern in patterns:
        trace = pattern.generate(np.random.default_rng(seed), n)
        assert len(trace) == n
        assert in_region(trace, region)
