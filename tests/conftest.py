"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.mem.paging import DemandPaging, EagerPaging, TransparentHugePaging
from repro.mem.physical import PhysicalMemory
from repro.mem.process import Process


@pytest.fixture
def physical() -> PhysicalMemory:
    """A small physical memory (1 GB) for fast allocator tests."""
    return PhysicalMemory(total_bytes=1 << 30, seed=7)


@pytest.fixture
def demand_process() -> Process:
    """Process with 4 KB demand paging over 1 GB of physical memory."""
    return Process(PhysicalMemory(total_bytes=1 << 30, seed=7), DemandPaging())


@pytest.fixture
def thp_process() -> Process:
    """Process with transparent huge pages."""
    return Process(PhysicalMemory(total_bytes=1 << 30, seed=7), TransparentHugePaging())


@pytest.fixture
def eager_process() -> Process:
    """Process with eager paging (THP redundant layout)."""
    return Process(PhysicalMemory(total_bytes=1 << 30, seed=7), EagerPaging("thp"))


@pytest.fixture
def eager_4kb_process() -> Process:
    """Process with eager paging (4 KB redundant layout, RMM_Lite style)."""
    return Process(PhysicalMemory(total_bytes=1 << 30, seed=7), EagerPaging("4kb"))
