"""Robustness under physical-memory fragmentation.

Real systems age: huge-page allocations fail and policies must degrade
gracefully.  THP falls back to 4 KB pages per chunk; eager paging splits
the request into smaller ranges (the RMM design's demotion path).
"""

import pytest

from repro.mem.paging import EagerPaging, TransparentHugePaging
from repro.mem.physical import OutOfMemoryError, PhysicalMemory
from repro.mem.process import Process
from repro.mmu.translation import PAGES_PER_2MB, PageSize


def fragmented_memory(total_bytes=1 << 28, pin_stride=1, seed=9):
    """Memory with one frame pinned every ``pin_stride`` frames.

    Drains the whole arena through the scatter pool, then frees every
    frame except those at multiples of ``pin_stride`` — deterministic
    fragmentation: free runs never exceed ``pin_stride - 1`` frames, so
    no 2 MB block exists for ``pin_stride <= 512`` while plenty of total
    memory stays free.  ``pin_stride=1`` pins nothing back (keeps all).
    """
    memory = PhysicalMemory(total_bytes, seed=seed)
    frames = []
    while True:
        try:
            frames.append(memory.alloc_frame())
        except OutOfMemoryError:
            break
    for pfn in frames:
        if pin_stride == 1 or pfn % pin_stride != 0:
            memory.free_frame(pfn)
    return memory


class TestTHPDegradation:
    def test_thp_falls_back_to_4kb(self):
        # One pinned frame per 2 MB chunk: no order-9 block anywhere.
        process = Process(fragmented_memory(pin_stride=256), TransparentHugePaging())
        process.mmap(PAGES_PER_2MB * 4, name="heap")
        histogram = process.page_size_histogram()
        # No 2 MB blocks available: every chunk degraded, nothing crashed.
        assert histogram[PageSize.SIZE_2MB] == 0
        assert histogram[PageSize.SIZE_4KB] == PAGES_PER_2MB * 4

    def test_partial_fragmentation_mixes_sizes(self):
        memory = PhysicalMemory(1 << 28, seed=4)
        # Pin one order-9 block's worth of scattered frames to break some
        # contiguity but leave other blocks whole.
        memory.fragment(0.3, seed=4)
        process = Process(memory, TransparentHugePaging())
        process.mmap(PAGES_PER_2MB * 8, name="heap")
        histogram = process.page_size_histogram()
        assert histogram[PageSize.SIZE_2MB] >= 1  # some chunks survive
        for vpn in range(0x10000, 0x10000 + 64):
            process.translate(vpn)  # everything mapped either way

    def test_true_exhaustion_still_raises(self):
        tiny = PhysicalMemory(1 << 20, seed=1)  # 256 frames
        process = Process(tiny, TransparentHugePaging())
        with pytest.raises(OutOfMemoryError):
            process.mmap(PAGES_PER_2MB * 2, name="heap")


class TestEagerRangeSplitting:
    def test_split_into_multiple_ranges(self):
        memory = fragmented_memory(pin_stride=256, seed=7)
        process = Process(memory, EagerPaging("4kb"))
        vma = process.mmap(12_000, name="heap")
        assert len(process.range_table) >= 2  # demoted into smaller ranges
        # Redundancy invariant holds per range.
        for vpn in range(vma.start_vpn, vma.end_vpn, 997):
            rng = process.range_table.lookup(vpn)
            assert rng is not None
            assert process.translate(vpn) == rng.translate(vpn)

    def test_ranges_tile_the_vma_exactly(self):
        memory = fragmented_memory(pin_stride=256, seed=8)
        process = Process(memory, EagerPaging("4kb"))
        vma = process.mmap(10_000, name="heap")
        covered = sorted(
            (rng.base_vpn, rng.limit_vpn)
            for rng in process.range_table
            if vma.start_vpn <= rng.base_vpn < vma.end_vpn
        )
        assert covered[0][0] == vma.start_vpn
        assert covered[-1][1] == vma.end_vpn
        for (a_start, a_end), (b_start, b_end) in zip(covered, covered[1:]):
            assert a_end == b_start  # no gaps, no overlaps

    def test_munmap_removes_all_split_ranges(self):
        memory = fragmented_memory(pin_stride=256, seed=8)
        process = Process(memory, EagerPaging("4kb"))
        vma = process.mmap(10_000, name="heap")
        assert len(process.range_table) >= 2
        process.munmap(vma)
        assert len(process.range_table) == 0

    def test_min_range_pages_floor(self):
        # Pin every 32nd frame: no run can host even a 64-page range.
        tiny = fragmented_memory(total_bytes=1 << 22, pin_stride=32, seed=1)
        process = Process(tiny, EagerPaging("4kb", min_range_pages=64))
        with pytest.raises(OutOfMemoryError):
            process.mmap(4_096, name="heap")

    def test_invalid_min_range(self):
        with pytest.raises(ValueError):
            EagerPaging("4kb", min_range_pages=0)


class TestRMMUnderFragmentation:
    @staticmethod
    def run_rmm_lite(pin_stride, seed):
        from repro.core.organizations import build_rmm_lite
        from repro.core.simulator import Simulator
        import numpy as np

        memory = fragmented_memory(pin_stride=pin_stride, seed=seed)
        process = Process(memory, EagerPaging("4kb"))
        vma = process.mmap(12_000, name="heap")
        org = build_rmm_lite(process)
        rng = np.random.default_rng(0)
        trace = vma.start_vpn + rng.integers(vma.num_pages, size=20_000)
        result = Simulator(org).run(
            trace.astype(np.int64), fast_forward_accesses=2_000
        )
        return result, len(process.range_table)

    def test_mild_fragmentation_few_ranges_still_covered(self):
        """A handful of demoted ranges still fits the 32-entry L2-range
        TLB: walks stay near zero."""
        result, num_ranges = self.run_rmm_lite(pin_stride=4_096, seed=11)
        assert 2 <= num_ranges <= 32
        assert result.l2_mpki < 0.5

    def test_severe_fragmentation_defeats_the_range_tlb(self):
        """RMM's known limit: once demotion produces more ranges than the
        L2-range TLB holds, random access brings the walks back — the
        robustness of range translations depends on eager paging keeping
        ranges large."""
        result, num_ranges = self.run_rmm_lite(pin_stride=256, seed=11)
        assert num_ranges > 32
        assert result.l2_mpki > 10
