"""Tests for the Section 6.2 static (leakage) energy model."""

import pytest

from repro.analysis.experiments import ExperimentSettings, run_workload_config_with_org
from repro.energy.cacti import TABLE2_PAGE_TLB
from repro.energy.static import StaticEnergyModel
from repro.workloads.base import VMASpec, Workload
from repro.workloads.patterns import Zipf

SETTINGS = ExperimentSettings(trace_accesses=20_000, physical_bytes=1 << 28)


def tiny_workload():
    return Workload(
        "tiny-static",
        "TEST",
        [VMASpec("heap", 8), VMASpec("stack", 1, thp_eligible=False)],
        lambda regions: Zipf(regions["heap"].subregion(0, 16), alpha=1.3, burst=4),
        instructions_per_access=3.0,
    )


@pytest.fixture(scope="module")
def thp_run():
    return run_workload_config_with_org(tiny_workload(), "THP", SETTINGS)


@pytest.fixture(scope="module")
def lite_run():
    return run_workload_config_with_org(tiny_workload(), "TLB_Lite", SETTINGS)


class TestExecutionTime:
    def test_seconds_formula(self, thp_run):
        result, _ = thp_run
        model = StaticEnergyModel(frequency_ghz=2.0, ipc=2.0)
        expected = (result.instructions / 2.0 + result.miss_cycles) / 2.0e9
        assert model.execution_seconds(result) == pytest.approx(expected)

    def test_invalid_parameters(self, thp_run):
        result, _ = thp_run
        with pytest.raises(ValueError):
            StaticEnergyModel(frequency_ghz=0).execution_seconds(result)
        with pytest.raises(ValueError):
            StaticEnergyModel(ipc=0).execution_seconds(result)


class TestLeakage:
    def test_full_power_leakage_matches_table2(self, thp_run):
        """Ungated: each structure leaks Table 2's full-config power."""
        result, organization = thp_run
        model = StaticEnergyModel()
        leakage = model.leakage_pj(organization, result, power_gating=False)
        seconds = model.execution_seconds(result)
        expected = TABLE2_PAGE_TLB[(64, 4)].leakage_mw * seconds * 1e9
        assert leakage["L1-4KB"] == pytest.approx(expected)

    def test_never_probed_structure_still_leaks_ungated(self, thp_run):
        result, organization = thp_run
        leakage = StaticEnergyModel().leakage_pj(organization, result, power_gating=False)
        assert leakage["L1-1GB"] > 0

    def test_gating_reduces_leakage_when_lite_downsizes(self, lite_run):
        result, organization = lite_run
        shares = result.way_lookup_shares("L1-4KB")
        assert shares.get(1, 0) > 0.5  # the tiny hot set lets Lite go 1-way
        model = StaticEnergyModel()
        gated = model.leakage_pj(organization, result, power_gating=True)
        ungated = model.leakage_pj(organization, result, power_gating=False)
        assert gated["L1-4KB"] < 0.5 * ungated["L1-4KB"]

    def test_gated_leakage_is_time_weighted(self, lite_run):
        result, organization = lite_run
        model = StaticEnergyModel()
        seconds = model.execution_seconds(result)
        shares = result.way_lookup_shares("L1-4KB")
        expected_mw = sum(
            share * TABLE2_PAGE_TLB[(16 * ways, ways)].leakage_mw
            for ways, share in shares.items()
        )
        gated = model.leakage_pj(organization, result, power_gating=True)
        assert gated["L1-4KB"] == pytest.approx(expected_mw * seconds * 1e9, rel=1e-6)

    def test_totals(self, thp_run):
        result, organization = thp_run
        model = StaticEnergyModel()
        total = model.total_leakage_pj(organization, result)
        assert total == pytest.approx(
            sum(model.leakage_pj(organization, result).values())
        )
        assert model.total_energy_pj(organization, result) == pytest.approx(
            result.total_energy_pj + total
        )

    def test_static_energy_is_significant_fraction(self, thp_run):
        """Leakage over the run is the same order as dynamic energy —
        the reason Section 6.2 calls power gating out as worthwhile."""
        result, organization = thp_run
        total = StaticEnergyModel().total_leakage_pj(organization, result)
        assert 0.01 * result.total_energy_pj < total < 100 * result.total_energy_pj
