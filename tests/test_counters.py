"""Tests for Lite's LRU-distance counters, including the exactness property.

Under true LRU, the stack inclusion property makes the counter-based miss
prediction exact: the misses a w-way TLB would have had equal the actual
misses of the n-way TLB plus all hits at stack ranks >= w.  This is the
core correctness argument of the paper's monitoring mechanism (Figure 6),
verified here against brute-force replay.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.counters import LRUDistanceCounters
from repro.tlb.set_assoc import SetAssociativeTLB


class TestCounterBasics:
    def test_counter_count(self):
        assert len(LRUDistanceCounters(1).raw) == 1
        assert len(LRUDistanceCounters(4).raw) == 3
        assert len(LRUDistanceCounters(8).raw) == 4

    def test_non_power_of_two_rejected(self):
        with pytest.raises(ValueError):
            LRUDistanceCounters(6)
        with pytest.raises(ValueError):
            LRUDistanceCounters(0)

    def test_grouping_matches_figure6(self):
        counters = LRUDistanceCounters(8)
        for rank in range(8):
            counters.record(rank)
        # Figure 6 groups (by rank from MRU): {0}, {1}, {2,3}, {4..7}.
        assert counters.raw == [1, 1, 2, 4]

    def test_record_range_checked(self):
        counters = LRUDistanceCounters(4)
        with pytest.raises(ValueError):
            counters.record(4)
        with pytest.raises(ValueError):
            counters.record(-1)

    def test_extra_misses(self):
        counters = LRUDistanceCounters(8)
        for rank in range(8):
            counters.record(rank)
        assert counters.extra_misses(8) == 0
        assert counters.extra_misses(4) == 4  # ranks 4-7
        assert counters.extra_misses(2) == 6  # ranks 2-7
        assert counters.extra_misses(1) == 7  # ranks 1-7

    def test_reset_and_total(self):
        counters = LRUDistanceCounters(4)
        counters.record(0)
        counters.record(3)
        assert counters.total_hits == 2
        counters.reset()
        assert counters.total_hits == 0
        assert counters.raw == [0, 0, 0]


def run_with_counters(keys, sets, ways):
    """Feed keys through a TLB with attached counters; return (misses, counters)."""
    tlb = SetAssociativeTLB("t", sets * ways, ways)
    counters = LRUDistanceCounters(ways)
    tlb.hit_rank_counters = counters.raw
    misses = 0
    for key in keys:
        if tlb.lookup(key) is None:
            misses += 1
            tlb.fill(key, key)
    return misses, counters


def run_plain(keys, sets, ways):
    tlb = SetAssociativeTLB("t", sets * ways, ways)
    misses = 0
    for key in keys:
        if tlb.lookup(key) is None:
            misses += 1
            tlb.fill(key, key)
    return misses


@settings(max_examples=60, deadline=None)
@given(
    keys=st.lists(st.integers(min_value=0, max_value=100), min_size=1, max_size=400),
    ways_exp=st.integers(min_value=0, max_value=3),
)
def test_prediction_is_exact_under_lru(keys, ways_exp):
    """Predicted misses for every smaller power-of-two way count equal the
    actual misses of the correspondingly smaller TLB (same set count)."""
    ways = 1 << ways_exp
    sets = 4
    misses, counters = run_with_counters(keys, sets, ways)
    smaller = ways
    while smaller >= 1:
        predicted = misses + counters.extra_misses(smaller)
        actual = run_plain(keys, sets, smaller)
        assert predicted == actual, (ways, smaller)
        smaller //= 2


def test_prediction_exact_on_adversarial_cyclic_pattern():
    """Cyclic over exactly `ways` lines per set: full hits, 1-way thrashes."""
    sets, ways = 4, 4
    keys = [s + 4 * w for _ in range(20) for w in range(ways) for s in range(sets)]
    misses, counters = run_with_counters(keys, sets, ways)
    assert misses == sets * ways  # compulsory only
    for smaller in (2, 1):
        assert misses + counters.extra_misses(smaller) == run_plain(keys, sets, smaller)
