"""Unit tests for page sizes, index arithmetic, and translation types."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.mmu.translation import (
    PAGES_PER_1GB,
    PAGES_PER_2MB,
    PageSize,
    RangeTranslation,
    Translation,
    pd_index,
    pde_tag,
    pdpt_index,
    pdpte_tag,
    pml4_index,
    pml4e_tag,
    pt_index,
)


class TestPageSize:
    def test_values_are_page_counts(self):
        assert int(PageSize.SIZE_4KB) == 1
        assert int(PageSize.SIZE_2MB) == 512
        assert int(PageSize.SIZE_1GB) == 512 * 512

    def test_bytes(self):
        assert PageSize.SIZE_4KB.bytes == 4096
        assert PageSize.SIZE_2MB.bytes == 2 << 20
        assert PageSize.SIZE_1GB.bytes == 1 << 30

    def test_page_shift(self):
        assert PageSize.SIZE_4KB.page_shift == 12
        assert PageSize.SIZE_2MB.page_shift == 21
        assert PageSize.SIZE_1GB.page_shift == 30

    def test_walk_levels(self):
        assert PageSize.SIZE_4KB.walk_levels == 4
        assert PageSize.SIZE_2MB.walk_levels == 3
        assert PageSize.SIZE_1GB.walk_levels == 2

    def test_align_down(self):
        assert PageSize.SIZE_2MB.align_down(513) == 512
        assert PageSize.SIZE_2MB.align_down(512) == 512
        assert PageSize.SIZE_4KB.align_down(513) == 513

    def test_labels(self):
        assert [s.label() for s in PageSize] == ["4KB", "2MB", "1GB"]


class TestIndexArithmetic:
    def test_indices_of_zero(self):
        assert pt_index(0) == pd_index(0) == pdpt_index(0) == pml4_index(0) == 0

    def test_known_decomposition(self):
        # vpn = pml4:3, pdpt:5, pd:7, pt:11
        vpn = (((3 * 512 + 5) * 512) + 7) * 512 + 11
        assert pt_index(vpn) == 11
        assert pd_index(vpn) == 7
        assert pdpt_index(vpn) == 5
        assert pml4_index(vpn) == 3

    @given(st.integers(min_value=0, max_value=(1 << 36) - 1))
    def test_tags_are_prefixes(self, vpn):
        assert pde_tag(vpn) == vpn >> 9
        assert pdpte_tag(vpn) == vpn >> 18
        assert pml4e_tag(vpn) == vpn >> 27

    @given(st.integers(min_value=0, max_value=(1 << 36) - 1))
    def test_same_2mb_page_shares_pde_tag(self, vpn):
        base = PageSize.SIZE_2MB.align_down(vpn)
        assert pde_tag(vpn) == pde_tag(base)


class TestTranslation:
    def test_alignment_enforced(self):
        with pytest.raises(ValueError):
            Translation(1, 512, PageSize.SIZE_2MB)
        with pytest.raises(ValueError):
            Translation(512, 1, PageSize.SIZE_2MB)

    def test_covers_and_translate(self):
        t = Translation(512, 1024, PageSize.SIZE_2MB)
        assert t.covers(512)
        assert t.covers(1023)
        assert not t.covers(1024)
        assert t.translate(700) == 1024 + (700 - 512)

    def test_translate_outside_raises(self):
        t = Translation(0, 0, PageSize.SIZE_4KB)
        with pytest.raises(KeyError):
            t.translate(1)

    def test_1gb_page(self):
        t = Translation(PAGES_PER_1GB, 0, PageSize.SIZE_1GB)
        assert t.covers(PAGES_PER_1GB + PAGES_PER_2MB)


class TestRangeTranslation:
    def test_empty_range_rejected(self):
        with pytest.raises(ValueError):
            RangeTranslation(10, 10, 0)
        with pytest.raises(ValueError):
            RangeTranslation(10, 5, 0)

    def test_offset_and_translate(self):
        r = RangeTranslation(100, 200, 1100)
        assert r.offset == 1000
        assert r.num_pages == 100
        assert r.translate(150) == 1150
        with pytest.raises(KeyError):
            r.translate(200)

    def test_overlaps(self):
        a = RangeTranslation(0, 10, 0)
        assert a.overlaps(RangeTranslation(9, 20, 100))
        assert not a.overlaps(RangeTranslation(10, 20, 100))
        assert a.overlaps(RangeTranslation(0, 1, 100))

    @given(
        a=st.integers(0, 100), la=st.integers(1, 50),
        b=st.integers(0, 100), lb=st.integers(1, 50),
    )
    def test_overlap_symmetry(self, a, la, b, lb):
        r1 = RangeTranslation(a, a + la, 1000)
        r2 = RangeTranslation(b, b + lb, 2000)
        assert r1.overlaps(r2) == r2.overlaps(r1)
        # Overlap iff intervals intersect.
        assert r1.overlaps(r2) == (max(a, b) < min(a + la, b + lb))
