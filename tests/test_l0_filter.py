"""Tests for the L0-filter related-work baseline (paper Section 7)."""

import pytest

from repro.analysis.experiments import ExperimentSettings, run_workload_config
from repro.core.organizations import build_l0_filter, build_organization, paging_policy_for
from repro.core.params import TLB_LITE_PARAMS
from repro.mem.paging import TransparentHugePaging
from repro.mem.physical import PhysicalMemory
from repro.mem.process import Process
from repro.mmu.translation import PAGES_PER_2MB, PageSize
from repro.workloads.base import VMASpec, Workload
from repro.workloads.patterns import Zipf

SETTINGS = ExperimentSettings(trace_accesses=30_000, physical_bytes=1 << 28)


def tight_workload():
    return Workload(
        "l0-tight",
        "TEST",
        [VMASpec("heap", 8), VMASpec("stack", 1, thp_eligible=False)],
        lambda regions: Zipf(regions["heap"].subregion(0, 6), alpha=1.2, burst=4),
        instructions_per_access=3.0,
    )


def make_process():
    process = Process(PhysicalMemory(1 << 29, seed=3), TransparentHugePaging())
    process.mmap(PAGES_PER_2MB * 2, name="heap")
    process.mmap(64, name="stack", thp_eligible=False)
    return process


class TestL0Hierarchy:
    def test_l0_hit_skips_l1_probes(self):
        org = build_l0_filter(make_process())
        h = org.hierarchy
        heap_vpn = 0x10000
        h.access(heap_vpn)  # cold: L0 miss, walk, promote to L0
        h.access(heap_vpn)  # L0 hit
        h.sync_stats()
        stats = {s.name: s.stats for s in h.all_structures()}
        assert stats["L0-filter"].lookups == 2
        assert stats["L0-filter"].hits == 1
        # The L1 probe happened only on the L0 miss.
        assert stats["L1-4KB"].lookups == 1

    def test_huge_entry_promoted_covers_whole_page(self):
        org = build_l0_filter(make_process())
        h = org.hierarchy
        h.access(0x10000)  # 2MB page
        assert h.l0.peek(0x10000).page_size is PageSize.SIZE_2MB
        h.access(0x10000 + 37)  # same huge page: L0 hit
        assert h.l0_attributed_hits == 1

    def test_attribution_includes_l0(self):
        result = run_workload_config(tight_workload(), "L0_Filter", SETTINGS)
        shares = result.hit_shares()
        assert shares.get("L0-filter", 0) > 0.7

    def test_shootdown_clears_l0(self):
        process = make_process()
        org = build_l0_filter(process)
        h = org.hierarchy
        h.access(0x10000)
        process.break_huge_page(0x10000)
        h.shootdown_huge_page(0x10000)
        assert h.l0.peek(0x10000) is None


class TestL0Configs:
    def test_filter_saves_energy_on_tight_workloads(self):
        workload = tight_workload()
        thp = run_workload_config(workload, "THP", SETTINGS)
        filtered = run_workload_config(workload, "L0_Filter", SETTINGS)
        assert filtered.total_energy_pj < 0.7 * thp.total_energy_pj
        # Filtering does not change what hits/misses overall.
        assert filtered.l2_misses == thp.l2_misses

    def test_l0_lite_runs_and_keeps_misses_bounded(self):
        workload = tight_workload()
        filtered = run_workload_config(workload, "L0_Filter", SETTINGS)
        combined = run_workload_config(workload, "L0_Lite", SETTINGS)
        assert combined.l1_mpki <= filtered.l1_mpki * 1.5 + 0.5

    def test_dispatch(self):
        policy = paging_policy_for("L0_Filter")
        assert isinstance(policy, TransparentHugePaging)
        org = build_organization("L0_Filter", make_process())
        assert org.name == "L0_Filter"
        assert org.lite is None
        org = build_organization("L0_Lite", make_process(), lite_params=TLB_LITE_PARAMS)
        assert org.name == "L0_Lite"
        assert org.lite is not None

    def test_every_structure_bound(self):
        org = build_l0_filter(make_process())
        bound = {binding.name for binding in org.bindings}
        structures = {s.name for s in org.hierarchy.all_structures()}
        assert bound == structures
